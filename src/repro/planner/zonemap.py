"""Per-crossbar zone-map statistics for crossbar skipping.

A relation stored in bulk-bitwise PIM memory places record ``i`` at row
``i % rows`` of crossbar ``i // rows``.  A filter program is normally
broadcast to *every* page of the relation, so its modelled latency, energy
and wear scale with the total crossbar count even when a selective predicate
can only match rows in a few of them.

:class:`ZoneMaps` keeps the classic lightweight per-partition statistics that
let the controller prove most crossbars irrelevant: for every encoded column
the minimum and maximum value stored in each crossbar, plus the live-row
count per crossbar.  The maps are **conservative, never wrong**:

* built exactly at load time;
* *widened* on INSERT (bounds only ever grow looser, so a skipped crossbar
  can never hide a freshly inserted match);
* count-decremented on DELETE (bounds untouched — tombstoned values may keep
  a crossbar a candidate, never the other way around);
* widened with the assigned constant on UPDATE;
* rebuilt exactly on compaction, when every row moves anyway.

Consequently ``candidates(...) == False`` for a crossbar *proves* that no
live row in it satisfies the conjunction, which is what makes pruned
execution bit-exact with the broadcast path.

The check itself is modelled as host-side work on a two-level summary
(per-page ranges first, per-crossbar ranges only inside surviving pages) and
charged to :class:`~repro.pim.stats.PimStats` as the ``zonemap-check`` phase;
maintenance under DML is charged as ``zonemap-maintain``.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping, Sequence

import numpy as np

from repro.config import HostConfig
from repro.db.query import And, Comparison, Or, Predicate
from repro.db.query import (
    BETWEEN,
    EQ,
    GE,
    GT,
    IN,
    LE,
    LT,
    NE,
    clamp_between,
    fold_comparison,
)
from repro.db.schema import Schema
from repro.pim.stats import PimStats

#: Host cycles to test one zone-map entry (one crossbar's ``(min, max)``
#: range) against one conjunct — a compare pair on cached, SIMD-friendly
#: metadata (two 64-bit compares per entry, vectorized 4-wide).
CHECK_CYCLES = 2.0

#: Host cycles to update one zone-map entry under DML maintenance.
MAINTAIN_CYCLES = 8.0

_U64_MAX = np.uint64(0xFFFFFFFFFFFFFFFF)


@dataclass
class ZoneCheck:
    """Outcome of matching one conjunction against the zone maps."""

    #: Candidate mask over the crossbars (``True`` = must be scanned).
    candidates: np.ndarray
    #: Top-level conjuncts actually evaluated (early exit may skip some).
    conjuncts_checked: int
    #: Zone-map entries consulted (two-level: pages, then crossbars of
    #: surviving pages) — the unit of the modelled check cost.
    entries_checked: int


class ZoneMaps:
    """Per-crossbar ``(min, max, live)`` statistics of a stored relation."""

    def __init__(self, crossbars: int, rows: int, schema: Schema) -> None:
        self.crossbars = int(crossbars)
        self.rows = int(rows)
        self.schema = schema
        self.live = np.zeros(self.crossbars, dtype=np.int64)
        self.mins: dict[str, np.ndarray] = {
            name: np.full(self.crossbars, _U64_MAX, dtype=np.uint64)
            for name in schema.names
        }
        self.maxs: dict[str, np.ndarray] = {
            name: np.zeros(self.crossbars, dtype=np.uint64)
            for name in schema.names
        }

    # ------------------------------------------------------------------ build
    @classmethod
    def from_stored(cls, stored) -> ZoneMaps:
        """Build exact zone maps for a freshly loaded stored relation."""
        maps = cls(
            stored.allocations[0].crossbars,
            stored.rows_per_crossbar,
            stored.relation.schema,
        )
        valid = np.ones(stored.num_records, dtype=bool)
        maps.rebuild(stored.relation, valid)
        return maps

    def rebuild(self, relation, valid: np.ndarray | None = None) -> None:
        """Recompute every entry exactly from the slot-aligned ground truth.

        ``valid`` masks tombstoned slots (all-live when omitted); slots past
        ``len(relation)`` are unused capacity and count as dead.
        """
        records = len(relation)
        capacity = self.crossbars * self.rows
        live = np.zeros(capacity, dtype=bool)
        if valid is None:
            live[:records] = True
        else:
            live[:records] = np.asarray(valid, dtype=bool)
        live = live.reshape(self.crossbars, self.rows)
        self.live = live.sum(axis=1).astype(np.int64)
        for name in self.schema.names:
            padded = np.zeros(capacity, dtype=np.uint64)
            padded[:records] = relation.column(name)
            grid = padded.reshape(self.crossbars, self.rows)
            self.mins[name] = np.where(live, grid, _U64_MAX).min(axis=1)
            self.maxs[name] = np.where(live, grid, np.uint64(0)).max(axis=1)

    def assert_tight(self, relation, valid: np.ndarray | None = None) -> None:
        """Assert every bound is *tight* against the slot-aligned ground truth.

        The maintenance hooks only ever widen bounds (INSERT/UPDATE) or
        decrement counts (DELETE) — correctness never requires tight bounds,
        but pruning quality does, and an exact rebuild (compaction or an
        error-triggered statistics rebuild) must leave no widen-only drift
        behind.  The expected bounds are computed through ``reduceat``, a
        different reduction path than :meth:`rebuild`, so a rebuild-path bug
        cannot hide itself.
        """
        records = len(relation)
        capacity = self.crossbars * self.rows
        live = np.zeros(capacity, dtype=bool)
        if valid is None:
            live[:records] = True
        else:
            live[:records] = np.asarray(valid, dtype=bool)
        offsets = np.arange(self.crossbars) * self.rows
        counts = np.add.reduceat(live.astype(np.int64), offsets)
        assert np.array_equal(self.live, counts), (
            "zone-map live counts disagree with the ground truth after an "
            "exact rebuild"
        )
        for name in self.schema.names:
            padded = np.zeros(capacity, dtype=np.uint64)
            padded[:records] = relation.column(name)
            mins = np.minimum.reduceat(np.where(live, padded, _U64_MAX), offsets)
            maxs = np.maximum.reduceat(np.where(live, padded, np.uint64(0)), offsets)
            assert np.array_equal(self.mins[name], mins) and np.array_equal(
                self.maxs[name], maxs
            ), (
                f"zone-map bounds for {name!r} are not tight after an exact "
                "rebuild (widen-only drift survived)"
            )

    # ------------------------------------------------------------ maintenance
    def note_insert(self, slot: int, record: Mapping[str, object]) -> None:
        """Widen the bounds of the crossbar an INSERT landed in."""
        crossbar = slot // self.rows
        fresh = self.live[crossbar] == 0
        for name in self.schema.names:
            value = np.uint64(record[name])
            if fresh:
                self.mins[name][crossbar] = value
                self.maxs[name][crossbar] = value
            else:
                self.mins[name][crossbar] = min(self.mins[name][crossbar], value)
                self.maxs[name][crossbar] = max(self.maxs[name][crossbar], value)
        self.live[crossbar] += 1

    def note_delete(self, slots: np.ndarray) -> None:
        """Decrement the live counts (bounds stay conservatively wide).

        The counts are clamped at zero: a negative count would silently
        poison the ``live > 0`` candidate prefilter and ``note_insert``'s
        fresh-crossbar bound reset, so a decrement below zero — an
        overlapping or replayed DELETE — fails loudly instead.
        """
        slots = np.asarray(slots, dtype=np.int64)
        if slots.size == 0:
            return
        counts = np.bincount(slots // self.rows, minlength=self.crossbars)
        decremented = self.live - counts.astype(np.int64)
        assert (decremented >= 0).all(), (
            "zone-map live counts driven negative (overlapping or replayed "
            f"DELETE): min {int(decremented.min())} at crossbar "
            f"{int(decremented.argmin())}"
        )
        self.live = np.maximum(decremented, 0)

    def note_update(self, attribute: str, encoded: int, crossbars: np.ndarray) -> None:
        """Widen an attribute's bounds with an UPDATE's assigned constant."""
        crossbars = np.asarray(crossbars, dtype=np.int64)
        if crossbars.size == 0:
            return
        value = np.uint64(encoded)
        mins = self.mins[attribute]
        maxs = self.maxs[attribute]
        mins[crossbars] = np.minimum(mins[crossbars], value)
        maxs[crossbars] = np.maximum(maxs[crossbars], value)

    # -------------------------------------------------------------- candidates
    def check(
        self,
        conjuncts: Sequence[Predicate],
        crossbars_per_page: int,
    ) -> ZoneCheck:
        """Candidate crossbars for a conjunction, with the modelled check cost.

        Conjuncts are evaluated in the given order (the planner orders them
        most-selective first) and the walk exits early once no candidate
        remains.  The entry count models a two-level check: the per-page
        summaries are consulted first and the per-crossbar entries only for
        pages the summary could not rule out.
        """
        candidates = self.live > 0
        pages = max(1, -(-self.crossbars // crossbars_per_page))
        entries = 0
        checked = 0
        for conjunct in conjuncts:
            if conjunct is None:
                continue
            if not candidates.any():
                break
            possible = self.possible(conjunct)
            checked += 1
            page_pad = pages * crossbars_per_page
            padded = np.zeros(page_pad, dtype=bool)
            padded[: self.crossbars] = possible & candidates
            surviving_pages = int(
                padded.reshape(pages, crossbars_per_page).any(axis=1).sum()
            )
            entries += pages + surviving_pages * crossbars_per_page
            candidates = candidates & possible
        return ZoneCheck(
            candidates=candidates,
            conjuncts_checked=checked,
            entries_checked=entries,
        )

    def possible(self, node: Predicate) -> np.ndarray:
        """Per-crossbar "some value in range *may* satisfy ``node``" (conservative).

        Bounds-only: the ``live > 0`` prefilter is *not* applied here — the
        candidate-set cache stores these masks across DELETEs, which change
        the live counts but never the bounds.  Always returns a fresh array.
        """
        if node is None:
            return np.ones(self.crossbars, dtype=bool)
        if isinstance(node, Comparison):
            return self._comparison_possible(node)
        if isinstance(node, And):
            mask = np.ones(self.crossbars, dtype=bool)
            for child in node.children:
                mask &= self.possible(child)
            return mask
        if isinstance(node, Or):
            mask = np.zeros(self.crossbars, dtype=bool)
            for child in node.children:
                mask |= self.possible(child)
            return mask
        # Unknown node: never prune on something we cannot reason about.
        return np.ones(self.crossbars, dtype=bool)

    def _encode(self, attribute: str, value) -> int | None:
        """Encode a constant like the compiler (None = not in dictionary)."""
        attr = self.schema.attribute(attribute)
        try:
            return int(attr.encode_value(value))
        except KeyError:
            return None

    def _comparison_possible(self, node: Comparison) -> np.ndarray:
        if node.attribute not in self.mins:
            return np.ones(self.crossbars, dtype=bool)
        lo = self.mins[node.attribute]
        hi = self.maxs[node.attribute]
        max_value = self.schema.attribute(node.attribute).max_value
        op = node.op
        if op == IN:
            mask = np.zeros(self.crossbars, dtype=bool)
            for value in node.values:
                encoded = self._encode(node.attribute, value)
                if encoded is not None and 0 <= encoded <= max_value:
                    v = np.uint64(encoded)
                    mask |= (lo <= v) & (v <= hi)
            return mask
        if op == BETWEEN:
            bounds = clamp_between(
                self._encode(node.attribute, node.low),
                self._encode(node.attribute, node.high),
                max_value,
            )
            if bounds is None:
                return np.zeros(self.crossbars, dtype=bool)
            low, high = bounds
            return (hi >= np.uint64(low)) & (lo <= np.uint64(high))
        encoded = self._encode(node.attribute, node.value)
        # The shared fold defines the out-of-domain semantics: when the
        # compiler folds the comparison to a constant, every (live) crossbar
        # either matches or none does.
        folded = fold_comparison(op, encoded, max_value)
        if folded is not None:
            return np.full(self.crossbars, folded, dtype=bool)
        v = np.uint64(encoded)
        if op == EQ:
            return (lo <= v) & (v <= hi)
        if op == NE:
            # Impossible only when every live value in the crossbar equals v.
            return ~((lo == v) & (hi == v))
        if op == LT:
            return lo < v
        if op == LE:
            return lo <= v
        if op == GT:
            return hi > v
        if op == GE:
            return hi >= v
        return np.ones(self.crossbars, dtype=bool)

    # ------------------------------------------------------------ cost model
    @staticmethod
    def charge_check(
        stats: PimStats,
        host: HostConfig,
        entries: float,
        phase: str = "zonemap-check",
    ) -> None:
        """Charge the host-side cost of consulting ``entries`` zone entries."""
        if entries <= 0:
            return
        stats.add_time(phase, entries * CHECK_CYCLES / host.frequency_hz)

    @staticmethod
    def charge_maintenance(
        stats: PimStats,
        host: HostConfig,
        entries: float,
        phase: str = "zonemap-maintain",
    ) -> None:
        """Charge the host-side cost of updating ``entries`` zone entries."""
        if entries <= 0:
            return
        stats.add_time(phase, entries * MAINTAIN_CYCLES / host.frequency_hz)


@dataclass
class PruneDecision:
    """Per-partition candidate crossbars for one query's WHERE clause.

    Produced by :meth:`repro.planner.planner.RelationStatistics.plan` from the
    per-partition conjunctions of the predicate.  ``empty`` means some
    partition's conjunction matches no crossbar at all — the whole filter is
    provably empty and the engine can skip the execution outright (which is
    how the sharded engine skips entire shards).
    """

    #: One candidate mask per vertical partition.
    candidates: list[np.ndarray]
    #: Crossbars across all partitions (the unpruned broadcast width).
    crossbars_total: int
    #: Candidate crossbars across all partitions (the pruned width).
    crossbars_scanned: int
    #: Zone-map entries consulted, summed over the partitions.
    entries_checked: int
    #: Top-level conjuncts evaluated before the walk exited.
    conjuncts_checked: int

    @property
    def empty(self) -> bool:
        """No crossbar can satisfy the conjunction of some partition."""
        return any(not mask.any() for mask in self.candidates)


#: Buckets per attribute of a pair sketch (8 × 8 grid → one 64-bit word).
PAIR_BUCKETS = 8
_PAIR_ALL = (1 << PAIR_BUCKETS) - 1
_PAIR_SATURATED = np.uint64(0xFFFFFFFFFFFFFFFF)


class PairZoneMap:
    """Per-crossbar presence sketch over the joint domain of a column pair.

    Single-column zone maps cannot see correlation: a crossbar whose
    ``d_year`` range covers 1997 *and* whose ``p_category`` range covers
    ``MFGR#12`` may still hold no row with both.  This sketch keeps, per
    crossbar, one 64-bit word whose bit ``(a_bucket * 8 + b_bucket)`` says
    "some live row here has ``a`` in bucket ``a_bucket`` and ``b`` in bucket
    ``b_bucket``" (buckets are the top 3 bits of the encoded value).  A
    conjunction constraining *both* columns intersects its allowed bucket
    grid with the sketch and prunes the crossbars whose intersection is
    empty.

    Maintenance mirrors the single-column discipline — conservative, never
    wrong: built exactly, bit-set on INSERT, *saturated* for the touched
    crossbars on UPDATE (the old values are unknown here), untouched on
    DELETE, rebuilt exactly on compaction.
    """

    def __init__(self, attributes, schema: Schema, crossbars: int, rows: int) -> None:
        first, second = attributes
        self.attributes = (first, second)
        self.schema = schema
        self.crossbars = int(crossbars)
        self.rows = int(rows)
        self.shifts = {
            name: max(0, schema.attribute(name).width - 3)
            for name in self.attributes
        }
        self.sketch = np.zeros(self.crossbars, dtype=np.uint64)

    @classmethod
    def from_relation(
        cls,
        attributes,
        schema: Schema,
        crossbars: int,
        rows: int,
        relation,
        valid: np.ndarray | None = None,
    ) -> PairZoneMap:
        pair = cls(attributes, schema, crossbars, rows)
        pair.rebuild(relation, valid)
        return pair

    def _bits_of(self, a_values: np.ndarray, b_values: np.ndarray) -> np.ndarray:
        first, second = self.attributes
        a_bucket = np.asarray(a_values, dtype=np.uint64) >> np.uint64(self.shifts[first])
        b_bucket = np.asarray(b_values, dtype=np.uint64) >> np.uint64(self.shifts[second])
        return a_bucket * np.uint64(PAIR_BUCKETS) + b_bucket

    # ------------------------------------------------------------ maintenance
    def rebuild(self, relation, valid: np.ndarray | None = None) -> None:
        """Recompute the sketch exactly from the slot-aligned ground truth."""
        records = len(relation)
        capacity = self.crossbars * self.rows
        live = np.zeros(capacity, dtype=bool)
        if valid is None:
            live[:records] = True
        else:
            live[:records] = np.asarray(valid, dtype=bool)
        first, second = self.attributes
        a_padded = np.zeros(capacity, dtype=np.uint64)
        a_padded[:records] = relation.column(first)
        b_padded = np.zeros(capacity, dtype=np.uint64)
        b_padded[:records] = relation.column(second)
        words = np.where(
            live, np.uint64(1) << self._bits_of(a_padded, b_padded), np.uint64(0)
        )
        self.sketch = np.bitwise_or.reduce(
            words.reshape(self.crossbars, self.rows), axis=1
        )

    def note_insert(self, slot: int, record: Mapping[str, object]) -> None:
        first, second = self.attributes
        bit = self._bits_of(
            np.uint64(record[first]), np.uint64(record[second])
        )
        self.sketch[slot // self.rows] |= np.uint64(1) << bit

    def note_update(self, attribute: str, crossbars: np.ndarray) -> None:
        """Saturate the touched crossbars when either column is reassigned.

        Only the assigned constant is known here, not which joint buckets
        the touched rows vacate or land in, so the sketch falls back to
        "anything possible" for those crossbars until the next exact rebuild.
        """
        if attribute not in self.shifts:
            return
        crossbars = np.asarray(crossbars, dtype=np.int64)
        if crossbars.size:
            self.sketch[crossbars] = _PAIR_SATURATED

    # -------------------------------------------------------------- candidates
    def bucket_mask(self, node: Comparison) -> int | None:
        """8-bit mask of this comparison's possible buckets (None = not ours)."""
        name = node.attribute
        if name not in self.shifts:
            return None
        shift = self.shifts[name]
        max_value = self.schema.attribute(name).max_value

        def bucket(encoded: int) -> int:
            return min(encoded >> shift, PAIR_BUCKETS - 1)

        def encode(value) -> int | None:
            try:
                return int(self.schema.attribute(name).encode_value(value))
            except KeyError:
                return None

        if node.op == IN:
            mask = 0
            for value in node.values:
                encoded = encode(value)
                if encoded is not None and 0 <= encoded <= max_value:
                    mask |= 1 << bucket(encoded)
            return mask
        if node.op == BETWEEN:
            bounds = clamp_between(
                encode(node.low), encode(node.high), max_value
            )
            if bounds is None:
                return 0
            low_bucket, high_bucket = bucket(bounds[0]), bucket(bounds[1])
            return ((1 << (high_bucket + 1)) - 1) & ~((1 << low_bucket) - 1)
        encoded = encode(node.value)
        folded = fold_comparison(node.op, encoded, max_value)
        if folded is not None:
            return _PAIR_ALL if folded else 0
        if node.op == EQ:
            return 1 << bucket(encoded)
        if node.op in (LT, LE):
            return (1 << (bucket(encoded) + 1)) - 1
        if node.op in (GT, GE):
            return _PAIR_ALL & ~((1 << bucket(encoded)) - 1)
        # NE (and anything unforeseen) constrains no bucket.
        return _PAIR_ALL

    def possible(self, a_mask: int, b_mask: int) -> np.ndarray:
        """Candidate crossbars given the pair's allowed bucket masks."""
        joint = 0
        for a_bit in range(PAIR_BUCKETS):
            if (a_mask >> a_bit) & 1:
                joint |= b_mask << (a_bit * PAIR_BUCKETS)
        return (self.sketch & np.uint64(joint)) != 0
