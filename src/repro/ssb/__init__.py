"""The Star Schema Benchmark (SSB) workload.

SSB [12] models a sales data warehouse: one fact relation (``lineorder``) and
four dimension relations (``customer``, ``supplier``, ``part``, ``date``),
queried by 13 analytical queries in four groups.  This package provides

* the relation schemas with dictionary-encoded categorical attributes
  (:mod:`repro.ssb.schema`),
* a scalable data generator with the skewed value distributions of Rabl et
  al. [15] that the paper populates its relation with
  (:mod:`repro.ssb.datagen`),
* the 13 SSB queries expressed in the query IR (:mod:`repro.ssb.queries`),
* the pre-joined relation used by the PIM configurations and by mnt-join
  (:mod:`repro.ssb.prejoined`).
"""

from repro.ssb.datagen import SSBDataset, generate
from repro.ssb.prejoined import DERIVED_ATTRIBUTES, build_ssb_prejoined
from repro.ssb.queries import ALL_QUERIES, QUERY_ORDER, ssb_query

__all__ = [
    "SSBDataset",
    "generate",
    "DERIVED_ATTRIBUTES",
    "build_ssb_prejoined",
    "ALL_QUERIES",
    "QUERY_ORDER",
    "ssb_query",
]
