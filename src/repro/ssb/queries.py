"""The 13 SSB queries expressed in the query IR.

Every query is written against the attribute namespace of the pre-joined
relation (attribute names are unique across the star schema, so the same IR
also drives the star-plan execution of the columnar baseline: the engine maps
each attribute back to its source relation through the catalog).

Aggregations reference the derived attributes materialised by
:mod:`repro.ssb.prejoined`:

* query flight 1 (``sum(lo_extendedprice * lo_discount)``) aggregates
  ``lo_revenue_discounted``;
* query flight 4 (``sum(lo_revenue - lo_supplycost)``) aggregates
  ``lo_profit``;
* query flights 2 and 3 aggregate the stored ``lo_revenue``.

For reference, the original SQL of every query is kept in its docstring-like
``sql`` field.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.query import (
    Aggregate,
    And,
    BETWEEN,
    Comparison,
    EQ,
    IN,
    LT,
    Query,
)


@dataclass(frozen=True)
class SSBQuery:
    """An SSB query: the IR plus the original SQL text for documentation."""

    query: Query
    sql: str
    group: int


def _q(name: str, predicate, aggregates, group_by=()) -> Query:
    return Query(name=name, predicate=predicate, aggregates=tuple(aggregates),
                 group_by=tuple(group_by))


_REVENUE_Q1 = Aggregate("sum", "lo_revenue_discounted", alias="revenue")
_REVENUE = Aggregate("sum", "lo_revenue", alias="revenue")
_PROFIT = Aggregate("sum", "lo_profit", alias="profit")


SSB_QUERIES: dict[str, SSBQuery] = {
    # ----------------------------------------------------------- flight 1
    "Q1.1": SSBQuery(
        _q("Q1.1",
           And((
               Comparison("d_year", EQ, 1993),
               Comparison("lo_discount", BETWEEN, low=1, high=3),
               Comparison("lo_quantity", LT, 25),
           )),
           [_REVENUE_Q1]),
        sql="select sum(lo_extendedprice*lo_discount) as revenue "
            "from lineorder, date where lo_orderdate = d_datekey "
            "and d_year = 1993 and lo_discount between 1 and 3 "
            "and lo_quantity < 25;",
        group=1,
    ),
    "Q1.2": SSBQuery(
        _q("Q1.2",
           And((
               Comparison("d_yearmonthnum", EQ, 199401),
               Comparison("lo_discount", BETWEEN, low=4, high=6),
               Comparison("lo_quantity", BETWEEN, low=26, high=35),
           )),
           [_REVENUE_Q1]),
        sql="select sum(lo_extendedprice*lo_discount) as revenue "
            "from lineorder, date where lo_orderdate = d_datekey "
            "and d_yearmonthnum = 199401 and lo_discount between 4 and 6 "
            "and lo_quantity between 26 and 35;",
        group=1,
    ),
    "Q1.3": SSBQuery(
        _q("Q1.3",
           And((
               Comparison("d_weeknuminyear", EQ, 6),
               Comparison("d_year", EQ, 1994),
               Comparison("lo_discount", BETWEEN, low=5, high=7),
               Comparison("lo_quantity", BETWEEN, low=26, high=35),
           )),
           [_REVENUE_Q1]),
        sql="select sum(lo_extendedprice*lo_discount) as revenue "
            "from lineorder, date where lo_orderdate = d_datekey "
            "and d_weeknuminyear = 6 and d_year = 1994 "
            "and lo_discount between 5 and 7 "
            "and lo_quantity between 26 and 35;",
        group=1,
    ),
    # ----------------------------------------------------------- flight 2
    "Q2.1": SSBQuery(
        _q("Q2.1",
           And((
               Comparison("p_category", EQ, "MFGR#12"),
               Comparison("s_region", EQ, "AMERICA"),
           )),
           [_REVENUE],
           group_by=("d_year", "p_brand1")),
        sql="select sum(lo_revenue), d_year, p_brand1 "
            "from lineorder, date, part, supplier "
            "where lo_orderdate = d_datekey and lo_partkey = p_partkey "
            "and lo_suppkey = s_suppkey and p_category = 'MFGR#12' "
            "and s_region = 'AMERICA' group by d_year, p_brand1;",
        group=2,
    ),
    "Q2.2": SSBQuery(
        _q("Q2.2",
           And((
               Comparison("p_brand1", BETWEEN, low="MFGR#2221", high="MFGR#2228"),
               Comparison("s_region", EQ, "ASIA"),
           )),
           [_REVENUE],
           group_by=("d_year", "p_brand1")),
        sql="select sum(lo_revenue), d_year, p_brand1 "
            "from lineorder, date, part, supplier "
            "where lo_orderdate = d_datekey and lo_partkey = p_partkey "
            "and lo_suppkey = s_suppkey "
            "and p_brand1 between 'MFGR#2221' and 'MFGR#2228' "
            "and s_region = 'ASIA' group by d_year, p_brand1;",
        group=2,
    ),
    "Q2.3": SSBQuery(
        _q("Q2.3",
           And((
               Comparison("p_brand1", EQ, "MFGR#2239"),
               Comparison("s_region", EQ, "EUROPE"),
           )),
           [_REVENUE],
           group_by=("d_year", "p_brand1")),
        sql="select sum(lo_revenue), d_year, p_brand1 "
            "from lineorder, date, part, supplier "
            "where lo_orderdate = d_datekey and lo_partkey = p_partkey "
            "and lo_suppkey = s_suppkey and p_brand1 = 'MFGR#2239' "
            "and s_region = 'EUROPE' group by d_year, p_brand1;",
        group=2,
    ),
    # ----------------------------------------------------------- flight 3
    "Q3.1": SSBQuery(
        _q("Q3.1",
           And((
               Comparison("c_region", EQ, "ASIA"),
               Comparison("s_region", EQ, "ASIA"),
               Comparison("d_year", BETWEEN, low=1992, high=1997),
           )),
           [_REVENUE],
           group_by=("c_nation", "s_nation", "d_year")),
        sql="select c_nation, s_nation, d_year, sum(lo_revenue) as revenue "
            "from customer, lineorder, supplier, date "
            "where lo_custkey = c_custkey and lo_suppkey = s_suppkey "
            "and lo_orderdate = d_datekey and c_region = 'ASIA' "
            "and s_region = 'ASIA' and d_year >= 1992 and d_year <= 1997 "
            "group by c_nation, s_nation, d_year;",
        group=3,
    ),
    "Q3.2": SSBQuery(
        _q("Q3.2",
           And((
               Comparison("c_nation", EQ, "UNITED STATES"),
               Comparison("s_nation", EQ, "UNITED STATES"),
               Comparison("d_year", BETWEEN, low=1992, high=1997),
           )),
           [_REVENUE],
           group_by=("c_city", "s_city", "d_year")),
        sql="select c_city, s_city, d_year, sum(lo_revenue) as revenue "
            "from customer, lineorder, supplier, date "
            "where lo_custkey = c_custkey and lo_suppkey = s_suppkey "
            "and lo_orderdate = d_datekey and c_nation = 'UNITED STATES' "
            "and s_nation = 'UNITED STATES' and d_year >= 1992 and d_year <= 1997 "
            "group by c_city, s_city, d_year;",
        group=3,
    ),
    "Q3.3": SSBQuery(
        _q("Q3.3",
           And((
               Comparison("c_city", IN, values=("UNITED KI1", "UNITED KI5")),
               Comparison("s_city", IN, values=("UNITED KI1", "UNITED KI5")),
               Comparison("d_year", BETWEEN, low=1992, high=1997),
           )),
           [_REVENUE],
           group_by=("c_city", "s_city", "d_year")),
        sql="select c_city, s_city, d_year, sum(lo_revenue) as revenue "
            "from customer, lineorder, supplier, date "
            "where lo_custkey = c_custkey and lo_suppkey = s_suppkey "
            "and lo_orderdate = d_datekey "
            "and (c_city = 'UNITED KI1' or c_city = 'UNITED KI5') "
            "and (s_city = 'UNITED KI1' or s_city = 'UNITED KI5') "
            "and d_year >= 1992 and d_year <= 1997 "
            "group by c_city, s_city, d_year;",
        group=3,
    ),
    "Q3.4": SSBQuery(
        _q("Q3.4",
           And((
               Comparison("c_city", IN, values=("UNITED KI1", "UNITED KI5")),
               Comparison("s_city", IN, values=("UNITED KI1", "UNITED KI5")),
               Comparison("d_yearmonth", EQ, "Dec1997"),
           )),
           [_REVENUE],
           group_by=("c_city", "s_city", "d_year")),
        sql="select c_city, s_city, d_year, sum(lo_revenue) as revenue "
            "from customer, lineorder, supplier, date "
            "where lo_custkey = c_custkey and lo_suppkey = s_suppkey "
            "and lo_orderdate = d_datekey "
            "and (c_city = 'UNITED KI1' or c_city = 'UNITED KI5') "
            "and (s_city = 'UNITED KI1' or s_city = 'UNITED KI5') "
            "and d_yearmonth = 'Dec1997' group by c_city, s_city, d_year;",
        group=3,
    ),
    # ----------------------------------------------------------- flight 4
    "Q4.1": SSBQuery(
        _q("Q4.1",
           And((
               Comparison("c_region", EQ, "AMERICA"),
               Comparison("s_region", EQ, "AMERICA"),
               Comparison("p_mfgr", IN, values=("MFGR#1", "MFGR#2")),
           )),
           [_PROFIT],
           group_by=("d_year", "c_nation")),
        sql="select d_year, c_nation, sum(lo_revenue - lo_supplycost) as profit "
            "from date, customer, supplier, part, lineorder "
            "where lo_custkey = c_custkey and lo_suppkey = s_suppkey "
            "and lo_partkey = p_partkey and lo_orderdate = d_datekey "
            "and c_region = 'AMERICA' and s_region = 'AMERICA' "
            "and (p_mfgr = 'MFGR#1' or p_mfgr = 'MFGR#2') "
            "group by d_year, c_nation;",
        group=4,
    ),
    "Q4.2": SSBQuery(
        _q("Q4.2",
           And((
               Comparison("d_year", IN, values=(1997, 1998)),
               Comparison("c_region", EQ, "AMERICA"),
               Comparison("s_region", EQ, "AMERICA"),
               Comparison("p_mfgr", IN, values=("MFGR#1", "MFGR#2")),
           )),
           [_PROFIT],
           group_by=("d_year", "s_nation", "p_category")),
        sql="select d_year, s_nation, p_category, "
            "sum(lo_revenue - lo_supplycost) as profit "
            "from date, customer, supplier, part, lineorder "
            "where lo_custkey = c_custkey and lo_suppkey = s_suppkey "
            "and lo_partkey = p_partkey and lo_orderdate = d_datekey "
            "and c_region = 'AMERICA' and s_region = 'AMERICA' "
            "and (d_year = 1997 or d_year = 1998) "
            "and (p_mfgr = 'MFGR#1' or p_mfgr = 'MFGR#2') "
            "group by d_year, s_nation, p_category;",
        group=4,
    ),
    "Q4.3": SSBQuery(
        _q("Q4.3",
           And((
               Comparison("d_year", IN, values=(1997, 1998)),
               Comparison("c_region", EQ, "AMERICA"),
               Comparison("s_nation", EQ, "UNITED STATES"),
               Comparison("p_category", EQ, "MFGR#14"),
           )),
           [_PROFIT],
           group_by=("d_year", "s_city", "p_brand1")),
        sql="select d_year, s_city, p_brand1, "
            "sum(lo_revenue - lo_supplycost) as profit "
            "from date, customer, supplier, part, lineorder "
            "where lo_custkey = c_custkey and lo_suppkey = s_suppkey "
            "and lo_partkey = p_partkey and lo_orderdate = d_datekey "
            "and c_region = 'AMERICA' and s_nation = 'UNITED STATES' "
            "and (d_year = 1997 or d_year = 1998) and p_category = 'MFGR#14' "
            "group by d_year, s_city, p_brand1;",
        group=4,
    ),
}

#: Execution order used by the evaluation figures.
QUERY_ORDER: tuple[str, ...] = (
    "Q1.1", "Q1.2", "Q1.3",
    "Q2.1", "Q2.2", "Q2.3",
    "Q3.1", "Q3.2", "Q3.3", "Q3.4",
    "Q4.1", "Q4.2", "Q4.3",
)

#: Plain mapping from query name to the IR query object.
ALL_QUERIES: dict[str, Query] = {name: entry.query for name, entry in SSB_QUERIES.items()}


def ssb_query(name: str) -> Query:
    """Return the IR of one SSB query (e.g. ``"Q2.1"``)."""
    try:
        return ALL_QUERIES[name]
    except KeyError:
        raise KeyError(f"unknown SSB query {name!r}; choose from {QUERY_ORDER}") from None


def queries_in_group(group: int) -> list[str]:
    """Names of the queries in one of the four SSB query flights."""
    return [name for name in QUERY_ORDER if SSB_QUERIES[name].group == group]
