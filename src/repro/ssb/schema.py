"""SSB relation schemas, value domains and dictionary encodings.

The domains follow the SSB specification (which itself derives from TPC-H):
five regions with five nations each, ten cities per nation (the nation name
truncated to nine characters plus a digit), five manufacturers with five
categories each and forty brands per category, seven order years
(1992-1998), and so on.  Categorical attributes are dictionary-encoded; the
dictionaries are built in sorted order so that the dense codes preserve the
lexicographic order, which lets range predicates such as
``p_brand1 BETWEEN 'MFGR#2221' AND 'MFGR#2228'`` be compiled to plain
unsigned comparisons on the codes.

Long free-text attributes (customer/supplier NAME and ADDRESS, part and date
names) are not generated at all: the paper drops them from the pre-joined
relation because no SSB query touches them, and generating them would only
inflate the baseline relations.
"""

from __future__ import annotations


from repro.db.schema import Attribute, Schema, dict_attribute, int_attribute, width_for_count

# ---------------------------------------------------------------------------
# Value domains
# ---------------------------------------------------------------------------

REGION_NATIONS: dict[str, tuple[str, ...]] = {
    "AFRICA": ("ALGERIA", "ETHIOPIA", "KENYA", "MOROCCO", "MOZAMBIQUE"),
    "AMERICA": ("ARGENTINA", "BRAZIL", "CANADA", "PERU", "UNITED STATES"),
    "ASIA": ("CHINA", "INDIA", "INDONESIA", "JAPAN", "VIETNAM"),
    "EUROPE": ("FRANCE", "GERMANY", "ROMANIA", "RUSSIA", "UNITED KINGDOM"),
    "MIDDLE EAST": ("EGYPT", "IRAN", "IRAQ", "JORDAN", "SAUDI ARABIA"),
}

REGIONS: tuple[str, ...] = tuple(sorted(REGION_NATIONS))
NATIONS: tuple[str, ...] = tuple(sorted(n for ns in REGION_NATIONS.values() for n in ns))
NATION_REGION: dict[str, str] = {
    nation: region for region, nations in REGION_NATIONS.items() for nation in nations
}

CITIES_PER_NATION = 10


def city_name(nation: str, index: int) -> str:
    """SSB city naming: the nation truncated/padded to nine chars plus a digit."""
    return f"{nation[:9]:<9}{index}"


CITIES: tuple[str, ...] = tuple(
    sorted(city_name(nation, i) for nation in NATIONS for i in range(CITIES_PER_NATION))
)
NATION_CITIES: dict[str, tuple[str, ...]] = {
    nation: tuple(city_name(nation, i) for i in range(CITIES_PER_NATION))
    for nation in NATIONS
}

MKTSEGMENTS: tuple[str, ...] = (
    "AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY",
)

MANUFACTURERS: tuple[str, ...] = tuple(f"MFGR#{i}" for i in range(1, 6))
CATEGORIES: tuple[str, ...] = tuple(
    f"MFGR#{m}{c}" for m in range(1, 6) for c in range(1, 6)
)
BRANDS_PER_CATEGORY = 40
BRANDS: tuple[str, ...] = tuple(
    f"{category}{brand:02d}"
    for category in CATEGORIES
    for brand in range(1, BRANDS_PER_CATEGORY + 1)
)

COLORS: tuple[str, ...] = (
    "almond", "aquamarine", "azure", "beige", "black", "blue", "brown", "coral",
    "cyan", "forest", "gold", "green", "indigo", "ivory", "lime", "magenta",
    "navy", "olive", "orange", "pink", "red", "silver", "white", "yellow",
)
PART_TYPES: tuple[str, ...] = tuple(
    f"{size} {material}"
    for size in ("ECONOMY", "LARGE", "MEDIUM", "SMALL", "STANDARD")
    for material in ("BRASS", "COPPER", "NICKEL", "STEEL", "TIN")
)
CONTAINERS: tuple[str, ...] = tuple(
    f"{size} {kind}"
    for size in ("JUMBO", "LG", "MED", "SM", "WRAP")
    for kind in ("BAG", "BOX", "CASE", "PACK")
)

SHIPMODES: tuple[str, ...] = ("AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK")
ORDER_PRIORITIES: tuple[str, ...] = (
    "1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW",
)
SEASONS: tuple[str, ...] = ("Christmas", "Fall", "Spring", "Summer", "Winter")
MONTH_NAMES: tuple[str, ...] = (
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
)
WEEKDAYS: tuple[str, ...] = (
    "Friday", "Monday", "Saturday", "Sunday", "Thursday", "Tuesday", "Wednesday",
)

FIRST_YEAR = 1992
LAST_YEAR = 1998
YEARS: tuple[int, ...] = tuple(range(FIRST_YEAR, LAST_YEAR + 1))

YEARMONTHS: tuple[str, ...] = tuple(
    sorted(f"{month}{year}" for year in YEARS for month in MONTH_NAMES)
)
YEARMONTHNUMS: tuple[int, ...] = tuple(
    sorted(year * 100 + month for year in YEARS for month in range(1, 13))
)


# ---------------------------------------------------------------------------
# Schemas
# ---------------------------------------------------------------------------

def customer_schema(num_customers: int) -> Schema:
    """Schema of the CUSTOMER dimension (NAME/ADDRESS/PHONE omitted)."""
    return Schema("customer", [
        int_attribute("c_custkey", width_for_count(num_customers + 1), source="customer"),
        dict_attribute("c_city", CITIES, source="customer"),
        dict_attribute("c_nation", NATIONS, source="customer"),
        dict_attribute("c_region", REGIONS, source="customer"),
        dict_attribute("c_mktsegment", MKTSEGMENTS, source="customer"),
    ])


def supplier_schema(num_suppliers: int) -> Schema:
    """Schema of the SUPPLIER dimension (NAME/ADDRESS/PHONE omitted)."""
    return Schema("supplier", [
        int_attribute("s_suppkey", width_for_count(num_suppliers + 1), source="supplier"),
        dict_attribute("s_city", CITIES, source="supplier"),
        dict_attribute("s_nation", NATIONS, source="supplier"),
        dict_attribute("s_region", REGIONS, source="supplier"),
    ])


def part_schema(num_parts: int) -> Schema:
    """Schema of the PART dimension (NAME omitted)."""
    return Schema("part", [
        int_attribute("p_partkey", width_for_count(num_parts + 1), source="part"),
        dict_attribute("p_mfgr", MANUFACTURERS, source="part"),
        dict_attribute("p_category", CATEGORIES, source="part"),
        dict_attribute("p_brand1", BRANDS, source="part"),
        dict_attribute("p_color", COLORS, source="part"),
        dict_attribute("p_type", PART_TYPES, source="part"),
        int_attribute("p_size", 6, source="part"),
        dict_attribute("p_container", CONTAINERS, source="part"),
    ])


def date_schema() -> Schema:
    """Schema of the DATE dimension (the textual d_date omitted)."""
    return Schema("date", [
        dict_attribute("d_datekey", [], width=12, source="date"),
        dict_attribute("d_dayofweek", WEEKDAYS, source="date"),
        dict_attribute("d_month", MONTH_NAMES, source="date"),
        int_attribute("d_year", 11, source="date"),
        dict_attribute("d_yearmonthnum", YEARMONTHNUMS, source="date"),
        dict_attribute("d_yearmonth", YEARMONTHS, source="date"),
        int_attribute("d_daynuminweek", 3, source="date"),
        int_attribute("d_daynuminmonth", 5, source="date"),
        int_attribute("d_daynuminyear", 9, source="date"),
        int_attribute("d_monthnuminyear", 4, source="date"),
        int_attribute("d_weeknuminyear", 6, source="date"),
        dict_attribute("d_sellingseason", SEASONS, source="date"),
        int_attribute("d_lastdayinweekfl", 1, source="date"),
        int_attribute("d_lastdayinmonthfl", 1, source="date"),
        int_attribute("d_holidayfl", 1, source="date"),
        int_attribute("d_weekdayfl", 1, source="date"),
    ])


def lineorder_schema(
    num_orders: int,
    num_customers: int,
    num_parts: int,
    num_suppliers: int,
    date_dictionary,
) -> Schema:
    """Schema of the LINEORDER fact relation.

    Date foreign keys reuse the DATE dimension's ``d_datekey`` dictionary so
    the same code refers to the same day in both relations.
    """
    return Schema("lineorder", [
        int_attribute("lo_orderkey", width_for_count(num_orders + 1), source="lineorder"),
        int_attribute("lo_linenumber", 3, source="lineorder"),
        int_attribute("lo_custkey", width_for_count(num_customers + 1), source="lineorder"),
        int_attribute("lo_partkey", width_for_count(num_parts + 1), source="lineorder"),
        int_attribute("lo_suppkey", width_for_count(num_suppliers + 1), source="lineorder"),
        Attribute("lo_orderdate", 12, kind="dict", dictionary=date_dictionary,
                  source="lineorder"),
        dict_attribute("lo_orderpriority", ORDER_PRIORITIES, source="lineorder"),
        int_attribute("lo_shippriority", 1, source="lineorder"),
        int_attribute("lo_quantity", 6, source="lineorder"),
        int_attribute("lo_extendedprice", 24, source="lineorder"),
        int_attribute("lo_ordtotalprice", 27, source="lineorder"),
        int_attribute("lo_discount", 4, source="lineorder"),
        int_attribute("lo_revenue", 24, source="lineorder"),
        int_attribute("lo_supplycost", 18, source="lineorder"),
        int_attribute("lo_tax", 4, source="lineorder"),
        Attribute("lo_commitdate", 12, kind="dict", dictionary=date_dictionary,
                  source="lineorder"),
        dict_attribute("lo_shipmode", SHIPMODES, source="lineorder"),
    ])
