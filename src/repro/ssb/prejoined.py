"""The pre-joined SSB relation stored in the PIM module.

The relations of the benchmark are stored as a single pre-joined relation:
the result of the equi-join between LINEORDER and the four dimensions on the
dimension keys (Section V-A).  Following the paper, the textual NAME and
ADDRESS attributes are left out (they are never generated here in the first
place) so that the pre-joined record fits in a single 512-bit crossbar row.

Two derived attributes are materialised alongside the join so every SSB
aggregation becomes a plain SUM over one stored field:

* ``lo_revenue_discounted`` = ``lo_extendedprice * lo_discount`` (query
  group 1's revenue definition),
* ``lo_profit`` = ``lo_revenue - lo_supplycost`` (query group 4's profit).

Both can equivalently be produced inside the memory with the NOR
multiplier/subtractor of :mod:`repro.pim.arithmetic` (see the
``derived_attribute_in_memory`` example); materialising them at load time is
the variant the timing results assume.
"""

from __future__ import annotations


from repro.core.prejoin import DerivedAttribute, build_prejoined_relation
from repro.db.catalog import Database
from repro.db.relation import Relation

#: Derived attributes materialised in the pre-joined relation.
DERIVED_ATTRIBUTES: tuple[DerivedAttribute, ...] = (
    DerivedAttribute(
        name="lo_revenue_discounted",
        op="mul",
        left="lo_extendedprice",
        right="lo_discount",
        width=28,
    ),
    DerivedAttribute(
        name="lo_profit",
        op="sub",
        left="lo_revenue",
        right="lo_supplycost",
        width=24,
    ),
)

#: The fact-relation partition of the two-xb (vertically partitioned) layout:
#: every attribute of LINEORDER plus the derived attributes; the second
#: partition holds all dimension attributes.  This is the worst-case split of
#: Section V-A (subgroup identifiers and aggregated attributes end up in
#: different crossbars).
def two_xb_partitions(prejoined: Relation) -> list[list[str]]:
    """Attribute partitioning of the two-xb configuration."""
    fact_names = [
        a.name for a in prejoined.schema
        if a.source == "lineorder" or a.name in {d.name for d in DERIVED_ATTRIBUTES}
    ]
    dimension_names = [a.name for a in prejoined.schema if a.name not in fact_names]
    return [fact_names, dimension_names]


def build_ssb_prejoined(database: Database, name: str = "ssb_prejoined") -> Relation:
    """Build the pre-joined SSB relation (fact joined with all dimensions)."""
    return build_prejoined_relation(
        database,
        name=name,
        derived=DERIVED_ATTRIBUTES,
    )


def max_aggregated_width(prejoined: Relation) -> int:
    """Widest attribute any SSB query aggregates (sizes the result area)."""
    candidates = ("lo_revenue_discounted", "lo_revenue", "lo_profit")
    return max(prejoined.schema.attribute(name).width for name in candidates)
