"""Scalable SSB data generator with skewed distributions.

The generator reproduces the structure of the SSB ``dbgen`` tool: the DATE
dimension covers the seven order years 1992-1998 day by day, CUSTOMER /
SUPPLIER / PART scale with the scale factor, and LINEORDER holds roughly six
million records per scale-factor unit, grouped into orders of one to seven
lines.

The paper populates the relation with the *skewed* variant of Rabl et
al. [15] so that GROUP-BY subgroups have non-uniform sizes (that non-
uniformity is what the hybrid GROUP-BY exploits).  Skew is implemented as a
Zipf distribution over the foreign keys — a few customers, parts, suppliers
and order dates receive a disproportionate share of the lineorders — with
``skew=0`` falling back to the uniform SSB population.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

import numpy as np

from repro.db.catalog import Database, ForeignKey
from repro.db.relation import Relation
from repro.ssb import schema as ssb_schema


@dataclass
class SSBDataset:
    """A generated SSB database plus its generation parameters."""

    database: Database
    scale_factor: float
    skew: float
    seed: int

    @property
    def lineorder(self) -> Relation:
        return self.database.relation("lineorder")

    @property
    def customer(self) -> Relation:
        return self.database.relation("customer")

    @property
    def supplier(self) -> Relation:
        return self.database.relation("supplier")

    @property
    def part(self) -> Relation:
        return self.database.relation("part")

    @property
    def date(self) -> Relation:
        return self.database.relation("date")


# SSB base cardinalities per scale-factor unit.
CUSTOMERS_PER_SF = 30_000
SUPPLIERS_PER_SF = 2_000
PARTS_PER_SF = 200_000
LINEORDERS_PER_SF = 6_000_000
MAX_LINES_PER_ORDER = 7

# Floors so that tiny scale factors still exercise every value domain.
MIN_CUSTOMERS = 500
MIN_SUPPLIERS = 250
MIN_PARTS = 1000
MIN_LINEORDERS = 2000


def generate(
    scale_factor: float = 0.01,
    skew: float = 0.5,
    seed: int = 42,
) -> SSBDataset:
    """Generate an SSB database at the given scale factor.

    Args:
        scale_factor: SSB scale factor (1.0 is roughly six million fact
            records; the paper uses 10, the default here is laptop-sized).
        skew: Zipf exponent applied to the foreign-key distributions
            (0 = the uniform SSB population).
        seed: Seed of the pseudo-random generator (generation is fully
            deterministic given the seed).
    """
    if scale_factor <= 0:
        raise ValueError("scale_factor must be positive")
    rng = np.random.default_rng(seed)

    num_customers = max(MIN_CUSTOMERS, int(round(CUSTOMERS_PER_SF * scale_factor)))
    num_suppliers = max(MIN_SUPPLIERS, int(round(SUPPLIERS_PER_SF * scale_factor)))
    num_parts = max(MIN_PARTS, int(round(PARTS_PER_SF * scale_factor)))
    num_lineorders = max(MIN_LINEORDERS, int(round(LINEORDERS_PER_SF * scale_factor)))

    date = _generate_date(rng)
    customer = _generate_customer(rng, num_customers)
    supplier = _generate_supplier(rng, num_suppliers)
    part = _generate_part(rng, num_parts)
    lineorder = _generate_lineorder(
        rng, num_lineorders, customer, supplier, part, date, skew
    )

    database = Database(
        relations={
            "lineorder": lineorder,
            "customer": customer,
            "supplier": supplier,
            "part": part,
            "date": date,
        },
        fact="lineorder",
        foreign_keys=[
            ForeignKey("lo_custkey", "customer", "c_custkey"),
            ForeignKey("lo_suppkey", "supplier", "s_suppkey"),
            ForeignKey("lo_partkey", "part", "p_partkey"),
            ForeignKey("lo_orderdate", "date", "d_datekey"),
        ],
    )
    return SSBDataset(database=database, scale_factor=scale_factor, skew=skew, seed=seed)


# ---------------------------------------------------------------------------
# Dimensions
# ---------------------------------------------------------------------------

def _generate_date(rng: np.random.Generator) -> Relation:
    schema = ssb_schema.date_schema()
    datekey_dict = schema.attribute("d_datekey").dictionary
    first = datetime.date(ssb_schema.FIRST_YEAR, 1, 1)
    last = datetime.date(ssb_schema.LAST_YEAR, 12, 31)
    days = (last - first).days + 1

    columns: dict[str, list] = {name: [] for name in schema.names}
    season_by_month = {
        12: "Christmas", 1: "Winter", 2: "Winter", 3: "Spring", 4: "Spring",
        5: "Spring", 6: "Summer", 7: "Summer", 8: "Summer", 9: "Fall",
        10: "Fall", 11: "Fall",
    }
    weekday_names = ("Monday", "Tuesday", "Wednesday", "Thursday", "Friday",
                     "Saturday", "Sunday")
    holidays = rng.choice(days, size=max(7, days // 70), replace=False)
    holiday_set = set(int(h) for h in holidays)

    for day_index in range(days):
        day = first + datetime.timedelta(days=day_index)
        weekday = weekday_names[day.weekday()]
        columns["d_datekey"].append(
            datekey_dict.encode(day.year * 10000 + day.month * 100 + day.day)
        )
        columns["d_dayofweek"].append(
            schema.attribute("d_dayofweek").dictionary.encode_existing(weekday)
        )
        columns["d_month"].append(
            schema.attribute("d_month").dictionary.encode_existing(
                ssb_schema.MONTH_NAMES[day.month - 1]
            )
        )
        columns["d_year"].append(day.year)
        columns["d_yearmonthnum"].append(
            schema.attribute("d_yearmonthnum").dictionary.encode_existing(
                day.year * 100 + day.month
            )
        )
        columns["d_yearmonth"].append(
            schema.attribute("d_yearmonth").dictionary.encode_existing(
                f"{ssb_schema.MONTH_NAMES[day.month - 1]}{day.year}"
            )
        )
        columns["d_daynuminweek"].append(day.isoweekday())
        columns["d_daynuminmonth"].append(day.day)
        columns["d_daynuminyear"].append(day.timetuple().tm_yday)
        columns["d_monthnuminyear"].append(day.month)
        columns["d_weeknuminyear"].append(min(53, day.isocalendar()[1]))
        columns["d_sellingseason"].append(
            schema.attribute("d_sellingseason").dictionary.encode_existing(
                season_by_month[day.month]
            )
        )
        columns["d_lastdayinweekfl"].append(1 if day.weekday() == 6 else 0)
        next_day = day + datetime.timedelta(days=1)
        columns["d_lastdayinmonthfl"].append(1 if next_day.month != day.month else 0)
        columns["d_holidayfl"].append(1 if day_index in holiday_set else 0)
        columns["d_weekdayfl"].append(1 if day.weekday() < 5 else 0)

    arrays = {name: np.array(values, dtype=np.uint64) for name, values in columns.items()}
    return Relation(schema, arrays)


def _covering_assignment(
    rng: np.random.Generator, count: int, domain: int
) -> np.ndarray:
    """Uniform assignment that covers the whole domain when ``count >= domain``.

    The first ``domain`` entities cycle deterministically through every value
    (so that, even at tiny scale factors, the specific cities and brands the
    SSB predicates name actually exist); the remainder is drawn uniformly at
    random, as dbgen does.
    """
    if count <= 0:
        return np.zeros(0, dtype=np.int64)
    covered = np.arange(min(count, domain), dtype=np.int64)
    if count <= domain:
        return covered
    rest = rng.integers(0, domain, count - domain)
    return np.concatenate([covered, rest])


def _generate_customer(rng: np.random.Generator, count: int) -> Relation:
    schema = ssb_schema.customer_schema(count)
    city_index = _covering_assignment(
        rng, count, len(ssb_schema.NATIONS) * ssb_schema.CITIES_PER_NATION
    )
    nations = city_index // ssb_schema.CITIES_PER_NATION
    city_digit = city_index % ssb_schema.CITIES_PER_NATION
    city_dict = schema.attribute("c_city").dictionary
    nation_dict = schema.attribute("c_nation").dictionary
    region_dict = schema.attribute("c_region").dictionary
    cities = np.array([
        city_dict.encode_existing(
            ssb_schema.city_name(ssb_schema.NATIONS[n], d)
        )
        for n, d in zip(nations, city_digit)
    ], dtype=np.uint64)
    nation_codes = np.array([
        nation_dict.encode_existing(ssb_schema.NATIONS[n]) for n in nations
    ], dtype=np.uint64)
    region_codes = np.array([
        region_dict.encode_existing(ssb_schema.NATION_REGION[ssb_schema.NATIONS[n]])
        for n in nations
    ], dtype=np.uint64)
    return Relation(schema, {
        "c_custkey": np.arange(1, count + 1, dtype=np.uint64),
        "c_city": cities,
        "c_nation": nation_codes,
        "c_region": region_codes,
        "c_mktsegment": rng.integers(
            0, len(ssb_schema.MKTSEGMENTS), count
        ).astype(np.uint64),
    })


def _generate_supplier(rng: np.random.Generator, count: int) -> Relation:
    schema = ssb_schema.supplier_schema(count)
    city_index = _covering_assignment(
        rng, count, len(ssb_schema.NATIONS) * ssb_schema.CITIES_PER_NATION
    )
    nations = city_index // ssb_schema.CITIES_PER_NATION
    city_digit = city_index % ssb_schema.CITIES_PER_NATION
    city_dict = schema.attribute("s_city").dictionary
    nation_dict = schema.attribute("s_nation").dictionary
    region_dict = schema.attribute("s_region").dictionary
    cities = np.array([
        city_dict.encode_existing(ssb_schema.city_name(ssb_schema.NATIONS[n], d))
        for n, d in zip(nations, city_digit)
    ], dtype=np.uint64)
    nation_codes = np.array([
        nation_dict.encode_existing(ssb_schema.NATIONS[n]) for n in nations
    ], dtype=np.uint64)
    region_codes = np.array([
        region_dict.encode_existing(ssb_schema.NATION_REGION[ssb_schema.NATIONS[n]])
        for n in nations
    ], dtype=np.uint64)
    return Relation(schema, {
        "s_suppkey": np.arange(1, count + 1, dtype=np.uint64),
        "s_city": cities,
        "s_nation": nation_codes,
        "s_region": region_codes,
    })


def _generate_part(rng: np.random.Generator, count: int) -> Relation:
    schema = ssb_schema.part_schema(count)
    brand_index = _covering_assignment(rng, count, len(ssb_schema.BRANDS))
    category_index = brand_index // ssb_schema.BRANDS_PER_CATEGORY
    brand_in_category = brand_index % ssb_schema.BRANDS_PER_CATEGORY + 1
    category_dict = schema.attribute("p_category").dictionary
    brand_dict = schema.attribute("p_brand1").dictionary
    mfgr_dict = schema.attribute("p_mfgr").dictionary
    categories = np.array([
        category_dict.encode_existing(ssb_schema.CATEGORIES[i]) for i in category_index
    ], dtype=np.uint64)
    brands = np.array([
        brand_dict.encode_existing(f"{ssb_schema.CATEGORIES[i]}{b:02d}")
        for i, b in zip(category_index, brand_in_category)
    ], dtype=np.uint64)
    mfgrs = np.array([
        mfgr_dict.encode_existing(ssb_schema.CATEGORIES[i][:6]) for i in category_index
    ], dtype=np.uint64)
    return Relation(schema, {
        "p_partkey": np.arange(1, count + 1, dtype=np.uint64),
        "p_mfgr": mfgrs,
        "p_category": categories,
        "p_brand1": brands,
        "p_color": rng.integers(0, len(ssb_schema.COLORS), count).astype(np.uint64),
        "p_type": rng.integers(0, len(ssb_schema.PART_TYPES), count).astype(np.uint64),
        "p_size": rng.integers(1, 51, count).astype(np.uint64),
        "p_container": rng.integers(0, len(ssb_schema.CONTAINERS), count).astype(np.uint64),
    })


# ---------------------------------------------------------------------------
# Fact relation
# ---------------------------------------------------------------------------

def _zipf_indices(
    rng: np.random.Generator, population: int, size: int, theta: float
) -> np.ndarray:
    """Skewed index selection: Zipf(theta) over a random permutation."""
    if theta <= 0 or population <= 1:
        return rng.integers(0, population, size)
    ranks = np.arange(1, population + 1, dtype=np.float64)
    probabilities = ranks ** (-theta)
    probabilities /= probabilities.sum()
    permutation = rng.permutation(population)
    return permutation[rng.choice(population, size=size, p=probabilities)]


def _generate_lineorder(
    rng: np.random.Generator,
    count: int,
    customer: Relation,
    supplier: Relation,
    part: Relation,
    date: Relation,
    skew: float,
) -> Relation:
    num_orders = max(1, count // 4)
    schema = ssb_schema.lineorder_schema(
        num_orders=num_orders,
        num_customers=len(customer),
        num_parts=len(part),
        num_suppliers=len(supplier),
        date_dictionary=date.schema.attribute("d_datekey").dictionary,
    )

    order_of_line = rng.integers(0, num_orders, count).astype(np.uint64)
    order_of_line.sort()
    linenumber = np.ones(count, dtype=np.uint64)
    same_as_prev = np.concatenate(([False], order_of_line[1:] == order_of_line[:-1]))
    running = 0
    for i in range(count):
        running = running + 1 if same_as_prev[i] else 1
        linenumber[i] = min(running, MAX_LINES_PER_ORDER)

    cust_idx = _zipf_indices(rng, len(customer), count, skew)
    supp_idx = _zipf_indices(rng, len(supplier), count, skew)
    part_idx = _zipf_indices(rng, len(part), count, skew)
    date_idx = _zipf_indices(rng, len(date), count, skew * 0.4)

    quantity = rng.integers(1, 51, count).astype(np.int64)
    unit_price = rng.integers(900, 111_001, count).astype(np.int64)
    discount = rng.integers(0, 11, count).astype(np.int64)
    tax = rng.integers(0, 9, count).astype(np.int64)
    extendedprice = quantity * unit_price
    revenue = extendedprice * (100 - discount) // 100
    supplycost = unit_price * 6 // 10

    # Order total price: sum of the extended prices of the order's lines.
    ordtotal = np.zeros(count, dtype=np.int64)
    totals = np.zeros(num_orders, dtype=np.int64)
    np.add.at(totals, order_of_line.astype(np.int64), extendedprice)
    ordtotal = totals[order_of_line.astype(np.int64)]

    commit_shift = rng.integers(1, 90, count)
    commit_idx = np.minimum(date_idx + commit_shift, len(date) - 1)

    columns = {
        "lo_orderkey": order_of_line + np.uint64(1),
        "lo_linenumber": linenumber,
        "lo_custkey": customer.column("c_custkey")[cust_idx],
        "lo_partkey": part.column("p_partkey")[part_idx],
        "lo_suppkey": supplier.column("s_suppkey")[supp_idx],
        "lo_orderdate": date.column("d_datekey")[date_idx],
        "lo_orderpriority": rng.integers(
            0, len(ssb_schema.ORDER_PRIORITIES), count
        ).astype(np.uint64),
        "lo_shippriority": np.zeros(count, dtype=np.uint64),
        "lo_quantity": quantity.astype(np.uint64),
        "lo_extendedprice": extendedprice.astype(np.uint64),
        "lo_ordtotalprice": ordtotal.astype(np.uint64),
        "lo_discount": discount.astype(np.uint64),
        "lo_revenue": revenue.astype(np.uint64),
        "lo_supplycost": supplycost.astype(np.uint64),
        "lo_tax": tax.astype(np.uint64),
        "lo_commitdate": date.column("d_datekey")[commit_idx],
        "lo_shipmode": rng.integers(0, len(ssb_schema.SHIPMODES), count).astype(np.uint64),
    }
    return Relation(schema, columns)
