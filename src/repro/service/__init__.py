"""Batched query serving over PIM-resident relations.

The service layer amortises per-query planning and compilation across a
multi-query workload: a shared LRU :class:`~repro.service.cache.ProgramCache`
for compiled NOR programs, vectorized (bit-exact, cost-identical) host paths,
and batch scheduling through shared per-relation executors.
"""

from repro.service.cache import CacheStats, ProgramCache
from repro.service.service import BatchResult, DmlOutcome, QueryRequest, QueryService
from repro.service.stats import DmlStats, PlannerStats, ServiceStats, ShardStats

__all__ = [
    "BatchResult",
    "CacheStats",
    "DmlOutcome",
    "DmlStats",
    "PlannerStats",
    "ProgramCache",
    "QueryRequest",
    "QueryService",
    "ServiceStats",
    "ShardStats",
]
