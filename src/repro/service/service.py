"""A batched query service over PIM-resident relations.

:class:`QueryService` is the serving layer the ROADMAP's production
north-star asks for: it accepts *batches* of queries against one or more
registered :class:`~repro.db.storage.StoredRelation`\\ s, schedules them
through a shared per-relation :class:`~repro.pim.controller.PimExecutor`, and
returns the individual :class:`~repro.core.executor.QueryExecution` results
together with aggregate :class:`~repro.service.stats.ServiceStats`.

Two mechanisms amortise per-query work across the batch (and across
batches):

* a shared :class:`~repro.service.cache.ProgramCache` — repeated WHERE
  clauses and pim-gb subgroup filters skip ``compile_predicate`` entirely;
* the engines run with ``vectorized=True`` by default, replacing the
  NOR-by-NOR functional simulation of filter and group-mask programs with
  single NumPy passes that are bit-exact and charge identical modelled costs
  (see :mod:`repro.core.stages`).

Relations that outgrow a single allocation register through
:meth:`QueryService.register_sharded`: the relation is split into K
horizontal shards served by a
:class:`~repro.sharding.executor.ShardedQueryEngine` — scatter-gather
execution whose modelled latency is max-over-shards plus a merge term, and
whose programs compile once through the same shared cache (the shards share
layout objects).

Results are bit-exact with sequential
:meth:`~repro.core.executor.PimQueryEngine.execute` calls;
``benchmarks/bench_service_throughput.py`` measures the wall-clock gain and
``benchmarks/bench_sharded_scaling.py`` the sharded latency scaling.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping, Sequence

from repro.config import (
    SystemConfig,
    default_trace_sink,
    default_tracing,
    validate_backend,
)
from repro.core.executor import PimQueryEngine, QueryExecution
from repro.core.latency_model import GroupByCostModel
from repro.core.parallel import ScatterPool
from repro.db import dml
from repro.db.query import Predicate, Query
from repro.db.relation import Relation
from repro.db.storage import StoredRelation
from repro.obs.explain import ExplainResult
from repro.obs.trace import SpanTracer
from repro.obs.wear import WearReport
from repro.pim.controller import PimExecutor
from repro.pim.module import PimModule
from repro.pim.stats import PimStats
from repro.planner.adaptive import AdaptiveSnapshot
from repro.planner.candidates import CandidateCacheStats
from repro.planner.planner import CostPlanner, execute_host_scan
from repro.service.cache import CacheStats, ProgramCache
from repro.service.stats import DmlStats, ServiceStats
from repro.sharding import dml as sharded_dml
from repro.sharding.executor import ShardedQueryEngine
from repro.sharding.storage import ShardedStoredRelation

#: A registered engine: plain single-allocation or sharded scatter-gather.
ServiceEngine = PimQueryEngine | ShardedQueryEngine

#: The executor state a registered engine needs: one executor for a plain
#: engine, one per shard for a sharded engine.
ServiceExecutors = PimExecutor | list[PimExecutor]


@dataclass(frozen=True)
class QueryRequest:
    """One query of a batch, optionally pinned to a registered relation."""

    query: Query
    relation: str | None = None


@dataclass
class DmlOutcome:
    """One DML call served by the service: the outcome plus modelled stats.

    ``stats`` merges the per-shard executors of a sharded relation —
    broadcast deletes and compactions combine as parallel phases
    (max-over-shards), routed inserts as serial work.  ``shard_stats`` keeps
    the unmerged per-shard breakdown (one entry for an unsharded relation),
    which is where the per-phase detail lives.
    """

    result: object
    stats: PimStats
    shard_stats: list[PimStats] = field(default_factory=list)


@dataclass
class BatchResult:
    """Executions (in request order) and aggregate stats of one batch."""

    executions: list[QueryExecution]
    stats: ServiceStats

    def __iter__(self):
        return iter(self.executions)

    def __len__(self) -> int:
        return len(self.executions)


class QueryService:
    """Serves query batches against registered PIM-resident relations."""

    def __init__(
        self,
        cache_capacity: int = 512,
        vectorized: bool = True,
        cache: ProgramCache | None = None,
        pruning: bool = True,
        planner: bool = True,
        scatter_workers: int | None = None,
        tracing: bool | None = None,
        trace_sink: str | None = None,
    ) -> None:
        """Create an empty service.

        Args:
            cache_capacity: Capacity of the shared compiled-program cache.
            vectorized: Run the registered engines with the vectorized
                (bit-exact, cost-identical) host paths; disable to force the
                gate-level NOR simulation everywhere.
            cache: Share an existing :class:`ProgramCache` between services.
            pruning: Run the registered engines with zone-map crossbar
                skipping (bit-exact; see :mod:`repro.planner`).
            planner: Route each query cost-based between the PIM engine and
                the host-scan path instead of always executing on PIM.
                Results are identical either way; only the modelled (and
                wall-clock) cost differs.
            scatter_workers: Width of the service-owned
                :class:`~repro.core.parallel.ScatterPool` every registered
                engine shares — the shard scatter and the batched group-by
                kernels reuse its warm worker threads across queries and
                batches.  Defaults to one worker per core; ``1`` keeps all
                execution on the calling thread.
            tracing: Record a hierarchical span trace for every served
                query, DML call and compaction (see :mod:`repro.obs.trace`).
                ``None`` follows the ``REPRO_TRACE`` environment variable;
                the disabled path costs one branch per span site.
                :meth:`explain` force-enables the tracer for its single
                execution regardless of this setting.
            trace_sink: JSONL path completed root spans are appended to;
                defaults to the path named by ``REPRO_TRACE`` (if any).
        """
        self.cache = cache if cache is not None else ProgramCache(cache_capacity)
        self.vectorized = bool(vectorized)
        self.pruning = bool(pruning)
        self.planner_enabled = bool(planner)
        self.pool = ScatterPool(scatter_workers)
        self.tracer = SpanTracer(
            enabled=default_tracing() if tracing is None else bool(tracing),
            sink=trace_sink if trace_sink is not None else default_trace_sink(),
        )
        self._planner = CostPlanner()
        self._engines: dict[str, ServiceEngine] = {}
        self._executors: dict[str, ServiceExecutors] = {}
        self._dml_counters: dict[str, dict[str, int]] = {}
        self._default: str | None = None
        self._host_routed_total = 0

    # -------------------------------------------------------------- registry
    def register(
        self,
        name: str,
        stored: StoredRelation,
        config: SystemConfig | None = None,
        label: str | None = None,
        cost_model: GroupByCostModel | None = None,
        sample_pages: int = 1,
        timing_scale: float = 1.0,
        default: bool = False,
    ) -> PimQueryEngine:
        """Register a stored relation and build its engine.

        The engine shares the service's program cache and, unless the
        service was created with ``vectorized=False``, uses the vectorized
        host paths.  The first registered relation becomes the default
        target for requests that do not name one.
        """
        self._check_name_free(name)
        engine = PimQueryEngine(
            stored,
            config=config,
            label=label if label is not None else name,
            cost_model=cost_model,
            sample_pages=sample_pages,
            timing_scale=timing_scale,
            compiler=self.cache,
            vectorized=self.vectorized,
            pruning=self.pruning,
            scatter_pool=self.pool,
            tracer=self.tracer,
        )
        self._engines[name] = engine
        self._executors[name] = PimExecutor(engine.config, tracer=self.tracer)
        self._dml_counters[name] = self._fresh_counters()
        if default or self._default is None:
            self._default = name
        return engine

    def register_sharded(
        self,
        name: str,
        relation: Relation,
        shards: int = 2,
        module: PimModule | None = None,
        config: SystemConfig | None = None,
        label: str | None = None,
        cost_model: GroupByCostModel | None = None,
        sample_pages: int = 1,
        timing_scale: float = 1.0,
        max_workers: int = 1,
        partitions: Sequence[Sequence[str]] | None = None,
        aggregation_width: int | None = None,
        reserve_bulk_aggregation: bool = True,
        default: bool = False,
        backend: str | None = None,
    ) -> ShardedQueryEngine:
        """Shard ``relation`` horizontally and register the scatter-gather engine.

        The relation is split into ``shards`` contiguous horizontal shards,
        each stored in its own crossbar allocation of ``module`` (a fresh
        :class:`PimModule` is created when omitted).  Queries routed to
        ``name`` scatter over the shards — optionally on a thread pool of
        ``max_workers`` — and gather through the partial-aggregate merge;
        their results are bit-exact with an unsharded engine while the
        modelled latency follows max-over-shards plus the merge term.
        Programs compile once: the shards share layouts, so the service's
        program cache hits across shards (and across queries, as usual).

        ``backend`` overrides the functional simulation backend
        (``"packed"`` or ``"bool"``, see :mod:`repro.pim.packed`) of the
        shard allocations; by default the configuration's backend is used.
        It only applies when the service creates the module itself.
        """
        self._check_name_free(name)
        if backend is not None:
            validate_backend(backend)
            if module is not None:
                raise ValueError(
                    "backend= only applies when the service allocates the "
                    "module; pass a module built with the desired backend "
                    "configuration instead"
                )
            base = config if config is not None else SystemConfig()
            config = base.with_backend(backend)
        if module is None:
            module = PimModule(config)
        sharded = ShardedStoredRelation(
            relation,
            module,
            shards=shards,
            label=label if label is not None else name,
            partitions=partitions,
            aggregation_width=aggregation_width,
            reserve_bulk_aggregation=reserve_bulk_aggregation,
        )
        engine = ShardedQueryEngine(
            sharded,
            config=config,
            label=label if label is not None else name,
            cost_model=cost_model,
            sample_pages=sample_pages,
            timing_scale=timing_scale,
            compiler=self.cache,
            vectorized=self.vectorized,
            pruning=self.pruning,
            max_workers=max_workers,
            planner=self._planner if self.planner_enabled else None,
            pool=self.pool if max_workers > 1 else None,
            tracer=self.tracer,
        )
        self._engines[name] = engine
        self._executors[name] = engine.make_executors()
        self._dml_counters[name] = self._fresh_counters()
        if default or self._default is None:
            self._default = name
        return engine

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release the shared scatter pool's worker threads (idempotent)."""
        self.pool.close()

    def __enter__(self) -> QueryService:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @staticmethod
    def _fresh_counters() -> dict[str, int]:
        return {"inserted": 0, "deleted": 0, "compactions": 0, "slots_reclaimed": 0}

    def _check_name_free(self, name: str) -> None:
        if name in self._engines:
            raise ValueError(f"relation {name!r} is already registered")

    @property
    def relations(self) -> list[str]:
        """Names of the registered relations."""
        return list(self._engines)

    def engine(self, name: str | None = None) -> ServiceEngine:
        """The engine serving ``name`` (or the default relation)."""
        return self._engines[self._resolve(name)]

    def _resolve(self, name: str | None) -> str:
        if name is None:
            if self._default is None:
                raise ValueError("no relation registered with this service")
            return self._default
        if name not in self._engines:
            raise KeyError(
                f"unknown relation {name!r}; registered: {self.relations}"
            )
        return name

    # ------------------------------------------------------------- execution
    def execute(self, query: Query, relation: str | None = None) -> QueryExecution:
        """Execute a single query through the service's shared machinery.

        With the planner enabled the query is routed cost-based: a
        high-selectivity query over a small relation streams through the
        host-scan path, everything else executes on the (pruned) PIM engine.
        Results are bit-exact either way.
        """
        name = self._resolve(relation)
        execution, _ = self._execute_routed(name, query)
        return execution

    def explain(self, query: Query, relation: str | None = None) -> ExplainResult:
        """EXPLAIN ANALYZE: execute ``query`` once and capture its span tree.

        The execution is real — it runs on the cost-chosen route, warms the
        caches and feeds the adaptive loop exactly like :meth:`execute` —
        with the service's tracer force-enabled around it.  The returned
        :class:`~repro.obs.explain.ExplainResult` carries the execution (and
        its bit-exact rows) plus the trace; ``result.render()`` shows only
        modelled quantities, so the text is identical across simulation
        backends.
        """
        name = self._resolve(relation)
        was_enabled = self.tracer.enabled
        self.tracer.enabled = True
        try:
            execution, _ = self._execute_routed(name, query)
            trace = self.tracer.pop_trace()
        finally:
            self.tracer.enabled = was_enabled
        return ExplainResult(relation=name, execution=execution, trace=trace)

    def wear_report(self, relation: str | None = None) -> WearReport:
        """Point-in-time wear observatory of one registered relation.

        Snapshots every crossbar bank's cumulative per-row write counters —
        the distribution behind the Fig. 9 endurance scalar — as a
        :class:`~repro.obs.wear.WearReport` (distributions, hottest
        crossbars, ASCII heatmap, endurance/lifetime figures).
        """
        name = self._resolve(relation)
        engine = self._engines[name]
        if isinstance(engine, ShardedQueryEngine):
            return WearReport.from_sharded(engine.sharded, label=name)
        return WearReport.from_stored(engine.stored, label=name)

    def _execute_routed(self, name: str, query: Query):
        """Execute one query on its cost-chosen route.

        Returns ``(execution, host_routed)`` where ``host_routed`` counts the
        engines served through the host-scan path — 0 or 1 for a plain
        engine, up to the shard count for a sharded one (each shard routes
        independently through the engine's planner).
        """
        engine = self._engines[name]
        with self.tracer.span("query", relation=name) as span:
            if self.tracer.enabled:
                cache_before = self.cache.snapshot()
            if self.planner_enabled and isinstance(engine, PimQueryEngine):
                decision = self._planner.route(query, engine)
                if decision.target == "host":
                    self._host_routed_total += 1
                    execution = execute_host_scan(engine, query, decision)
                    if self.tracer.enabled:
                        self._annotate_query_span(span, execution, cache_before, "host")
                    return execution, 1
            execution = engine.execute(query, executor=self._executors[name])
            host_routed = getattr(execution, "host_routed_shards", 0)
            self._host_routed_total += host_routed
            if self.tracer.enabled:
                self._annotate_query_span(span, execution, cache_before, "pim")
            return execution, host_routed

    def _annotate_query_span(self, span, execution, cache_before, routed):
        """Decision attributes of one served query's root span."""
        cache_delta = self.cache.snapshot() - cache_before
        span.set(
            routed=routed,
            label=execution.label,
            cache_hits=cache_delta.hits,
            cache_misses=cache_delta.misses,
            crossbars_total=execution.crossbars_total,
            crossbars_scanned=execution.crossbars_scanned,
            result_rows=len(execution.rows),
        )

    def execute_batch(
        self,
        queries: Iterable[Query | QueryRequest],
        relation: str | None = None,
    ) -> BatchResult:
        """Execute a batch and return per-query results plus service stats.

        Requests are scheduled grouped by target relation (back-to-back
        execution against one relation keeps its programs and columns hot)
        while the returned executions keep the submission order.
        """
        requests: list[QueryRequest] = [
            q if isinstance(q, QueryRequest) else QueryRequest(q, relation)
            for q in queries
        ]
        targets = [self._resolve(r.relation or relation) for r in requests]
        schedule = sorted(range(len(requests)), key=lambda i: (targets[i], i))

        cache_before = self.cache.snapshot()
        candidates_before = self.candidate_cache_stats()
        pending: list[QueryExecution | None] = [None] * len(requests)
        host_routed = 0
        start = time.perf_counter()
        for index in schedule:
            execution, routed_to_host = self._execute_routed(
                targets[index], requests[index].query
            )
            pending[index] = execution
            host_routed += routed_to_host
        wall = time.perf_counter() - start
        # The schedule is a permutation of the request indices, so after the
        # loop every slot holds an execution; narrow the Optional away.
        executions: list[QueryExecution] = []
        for index, execution in enumerate(pending):
            if execution is None:
                raise AssertionError(f"request {index} was never scheduled")
            executions.append(execution)
        stats = ServiceStats.from_executions(
            executions, wall,
            cache=self.cache.snapshot() - cache_before,
            dml=self._dml_snapshot(),
            host_routed=host_routed,
            candidates=self.candidate_cache_stats() - candidates_before,
            adaptive=self.adaptive_stats(),
        )
        return BatchResult(executions=executions, stats=stats)

    def cache_stats(self) -> CacheStats:
        """Point-in-time snapshot of the shared program cache's counters."""
        return self.cache.snapshot()

    def candidate_cache_stats(self) -> CandidateCacheStats:
        """Summed candidate-set cache counters of every registered relation.

        A sharded relation contributes one cache per shard (the shards share
        the normalized fragment keys but cache their own masks).
        """
        total = CandidateCacheStats()
        for engine in self._engines.values():
            if isinstance(engine, ShardedQueryEngine):
                stats_owners = [shard.statistics for shard in engine.sharded.shards]
            else:
                stats_owners = [engine.stored.statistics]
            for statistics in stats_owners:
                total = total + statistics.candidate_stats()
        return total

    def adaptive_stats(self) -> AdaptiveSnapshot:
        """Summed feedback-loop snapshots of every registered relation.

        Point-in-time, like :meth:`dml_stats` — the loop's counters only
        grow, so a caller that wants a per-batch delta can difference the
        ``observations``/``rebuilds`` counts itself.
        """
        total = AdaptiveSnapshot()
        for engine in self._engines.values():
            if isinstance(engine, ShardedQueryEngine):
                stats_owners = [s.statistics for s in engine.sharded.shards]
            else:
                stats_owners = [engine.stored.statistics]
            for statistics in stats_owners:
                total = total + statistics.adaptive_snapshot()
        return total

    # ------------------------------------------------------------------- DML
    def insert(
        self,
        records: Sequence[Mapping[str, object]],
        relation: str | None = None,
    ) -> DmlOutcome:
        """Insert records into a registered relation (slot reuse, then tail).

        A sharded relation routes each record to its currently least-full
        shard.  Raises :class:`~repro.db.storage.RelationFullError` when the
        batch does not fit.
        """
        name = self._resolve(relation)
        engine = self._engines[name]
        with self.tracer.span(
            "dml-insert", relation=name, records=len(records)
        ) as span:
            executors = self._bind_dml_stats(name)
            if isinstance(engine, ShardedQueryEngine):
                result = sharded_dml.execute_sharded_insert(
                    engine.sharded, records, executors=executors
                )
            else:
                result = dml.execute_insert(engine.stored, records, executors[0])
            self._dml_counters[name]["inserted"] += result.records_inserted
            if self.tracer.enabled:
                span.set(inserted=result.records_inserted)
            return DmlOutcome(
                result,
                self._merge_dml_stats(executors, parallel=False),
                [executor.stats.copy() for executor in executors],
            )

    def delete(
        self, predicate: Predicate, relation: str | None = None
    ) -> DmlOutcome:
        """Tombstone the records selected by ``predicate`` — in memory.

        The filter program compiles through the service's program cache (a
        repeated DELETE, or a DELETE matching a cached WHERE clause, skips
        compilation); a sharded relation broadcasts the once-compiled
        programs to every shard.
        """
        name = self._resolve(relation)
        engine = self._engines[name]
        with self.tracer.span("dml-delete", relation=name) as span:
            executors = self._bind_dml_stats(name)
            if isinstance(engine, ShardedQueryEngine):
                result = sharded_dml.execute_sharded_delete(
                    engine.sharded, predicate,
                    executors=executors,
                    compiler=self.cache,
                    vectorized=self.vectorized,
                )
            else:
                compiled = dml.compile_delete(
                    engine.stored, predicate, compiler=self.cache
                )
                result = dml.execute_delete(
                    engine.stored, predicate, executors[0],
                    compiled=compiled, vectorized=self.vectorized,
                )
            self._dml_counters[name]["deleted"] += result.records_deleted
            if self.tracer.enabled:
                span.set(deleted=result.records_deleted)
            return DmlOutcome(
                result,
                self._merge_dml_stats(executors, parallel=True),
                [executor.stats.copy() for executor in executors],
            )

    def compact(
        self,
        relation: str | None = None,
        threshold: float = dml.DEFAULT_COMPACTION_THRESHOLD,
        force: bool = False,
        cluster_by: str | None = None,
    ) -> DmlOutcome:
        """Compact a relation's tombstones away when fragmentation warrants it.

        The rewrite re-clusters the surviving rows by ``cluster_by``
        (default: the relation's hottest predicate column, per its adaptive
        feedback loop).
        """
        name = self._resolve(relation)
        engine = self._engines[name]
        with self.tracer.span("compact", relation=name) as span:
            executors = self._bind_dml_stats(name)
            if isinstance(engine, ShardedQueryEngine):
                result = sharded_dml.execute_sharded_compaction(
                    engine.sharded, executors=executors,
                    threshold=threshold, force=force, cluster_by=cluster_by,
                )
                performed = result.shards_compacted
                reclaimed = result.slots_reclaimed
            else:
                result = dml.execute_compaction(
                    engine.stored, executors[0], threshold=threshold,
                    force=force, cluster_by=cluster_by,
                )
                performed = int(result.performed)
                reclaimed = result.slots_reclaimed
            self._dml_counters[name]["compactions"] += performed
            self._dml_counters[name]["slots_reclaimed"] += reclaimed
            if self.tracer.enabled:
                span.set(compactions=performed, slots_reclaimed=reclaimed)
            return DmlOutcome(
                result,
                self._merge_dml_stats(executors, parallel=True),
                [executor.stats.copy() for executor in executors],
            )

    def dml_stats(self, relation: str | None = None) -> DmlStats:
        """Live-row / tombstone / lifecycle counters of one relation."""
        name = self._resolve(relation)
        return self._relation_dml_stats(name)

    def _relation_dml_stats(self, name: str) -> DmlStats:
        engine = self._engines[name]
        if isinstance(engine, ShardedQueryEngine):
            storage = engine.sharded
            capacity = sum(shard.record_capacity for shard in storage.shards)
        else:
            storage = engine.stored
            capacity = storage.record_capacity
        counters = self._dml_counters[name]
        return DmlStats(
            live_rows=storage.live_count,
            tombstones=storage.tombstone_count,
            slots_in_use=storage.num_records,
            capacity=capacity,
            inserted=counters["inserted"],
            deleted=counters["deleted"],
            compactions=counters["compactions"],
            slots_reclaimed=counters["slots_reclaimed"],
        )

    def _dml_snapshot(self) -> DmlStats | None:
        """Aggregate DML state over all relations; ``None`` before any DML."""
        if not any(
            any(counters.values()) for counters in self._dml_counters.values()
        ):
            return None
        per_relation = [self._relation_dml_stats(name) for name in self._engines]
        return DmlStats(
            live_rows=sum(s.live_rows for s in per_relation),
            tombstones=sum(s.tombstones for s in per_relation),
            slots_in_use=sum(s.slots_in_use for s in per_relation),
            capacity=sum(s.capacity for s in per_relation),
            inserted=sum(s.inserted for s in per_relation),
            deleted=sum(s.deleted for s in per_relation),
            compactions=sum(s.compactions for s in per_relation),
            slots_reclaimed=sum(s.slots_reclaimed for s in per_relation),
        )

    def _bind_dml_stats(self, name: str) -> list[PimExecutor]:
        """Attach fresh per-call stats to the relation's executor(s)."""
        executors = self._executors[name]
        if isinstance(executors, PimExecutor):
            executors = [executors]
        for executor in executors:
            executor.stats = PimStats()
            self.tracer.bind(executor.stats)
        return executors

    def _merge_dml_stats(
        self, executors: Sequence[PimExecutor], parallel: bool
    ) -> PimStats:
        """One stats roll-up per DML call: parallel broadcast or serial routing."""
        if len(executors) == 1:
            return executors[0].stats
        merged = PimStats()
        if parallel:
            merged.merge_parallel(
                [executor.stats for executor in executors], phase="dml-scatter"
            )
        else:
            for executor in executors:
                merged.merge(executor.stats)
        return merged
