"""Aggregate statistics of a batch served by the query service.

The individual :class:`~repro.core.executor.QueryExecution` objects carry the
device-accurate modelled latency/energy of each query; :class:`ServiceStats`
condenses a batch of them into the operational numbers a serving system is
judged by — throughput and tail latency.

Two clocks are reported side by side:

* **modelled** — the simulated PIM latency of the paper's timing model
  (p50/p95 over the batch, plus the serial sum);
* **wall** — how long the functional simulation itself took, which is what
  the service's vectorized host paths and program cache optimise.

Batches served by a sharded relation additionally report the scatter-gather
figures: per-shard latency percentiles, the modelled parallel speedup
(serial sum of the shard latencies over the max-over-shards critical path)
and the worst per-shard wear.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.core.executor import QueryExecution
from repro.obs.metrics import MetricsRegistry, register_fields
from repro.planner.adaptive import AdaptiveSnapshot
from repro.planner.candidates import CandidateCacheStats
from repro.service.cache import CacheStats
from repro.sharding.executor import ShardedQueryExecution


@dataclass(frozen=True)
class ShardStats:
    """Scatter-gather summary of the sharded executions of one batch."""

    #: Sharded executions contributing to this summary.
    executions: int
    #: Largest shard fan-out seen in the batch.
    shards: int
    #: p50/p95 of the *per-shard* modelled latencies (the scatter phase).
    shard_p50_s: float
    shard_p95_s: float
    #: Serial sum of shard latencies over the parallel critical path,
    #: averaged over the batch's sharded executions.
    parallel_speedup: float
    #: Total modelled time spent merging per-shard partial results.
    merge_time_s: float
    #: Worst per-row write count observed by any single shard.
    max_shard_writes_per_row: int

    @classmethod
    def from_executions(
        cls, executions: Sequence[ShardedQueryExecution]
    ) -> ShardStats | None:
        """Summarise the sharded executions of a batch (``None`` if none)."""
        if not executions:
            return None
        # A sharded execution whose shards were all pruned out reports no
        # per-shard latencies or wear; the percentiles/max must not choke on
        # those empty sequences.
        shard_latencies = np.array(
            [t for e in executions for t in e.shard_times_s], dtype=float
        )
        return cls(
            executions=len(executions),
            shards=max(e.shards for e in executions),
            shard_p50_s=(
                float(np.percentile(shard_latencies, 50))
                if shard_latencies.size else 0.0
            ),
            shard_p95_s=(
                float(np.percentile(shard_latencies, 95))
                if shard_latencies.size else 0.0
            ),
            parallel_speedup=float(
                np.mean([e.parallel_speedup for e in executions])
            ),
            merge_time_s=float(sum(e.merge_time_s for e in executions)),
            max_shard_writes_per_row=max(
                (max(e.shard_writes_per_row, default=0) for e in executions),
                default=0,
            ),
        )


@dataclass(frozen=True)
class DmlStats:
    """Data-lifecycle counters of the service's registered relations.

    ``live_rows``/``tombstones``/``slots_in_use`` are a point-in-time
    snapshot of the storage state; the remaining fields count DML executed
    through the service since it was created.
    """

    live_rows: int = 0
    tombstones: int = 0
    slots_in_use: int = 0
    capacity: int = 0
    inserted: int = 0
    deleted: int = 0
    compactions: int = 0
    slots_reclaimed: int = 0

    @property
    def fragmentation(self) -> float:
        """Tombstoned fraction of the slots in use."""
        return self.tombstones / self.slots_in_use if self.slots_in_use else 0.0


@dataclass(frozen=True)
class AdaptiveStats:
    """Feedback-loop counters of the registered relations' statistics.

    A point-in-time roll-up of the per-relation
    :class:`~repro.planner.adaptive.AdaptiveController` snapshots (summed
    over engines and shards): how many executions fed the loop, how many
    error-triggered equi-depth rebuilds and correlated-pair sketches it
    applied, the error still accumulating, and the current hottest
    column/pair that the next re-clustering compaction would use.
    """

    observations: int = 0
    rebuilds: int = 0
    pair_sketches: int = 0
    accumulated_error: float = 0.0
    hot_column: str | None = None
    hot_pair: tuple | None = None

    @classmethod
    def from_snapshot(
        cls, snapshot: AdaptiveSnapshot | None
    ) -> AdaptiveStats | None:
        """Wrap a (possibly summed) snapshot; ``None`` when the loop is idle."""
        if snapshot is None or snapshot.observations == 0:
            return None
        return cls(
            observations=snapshot.observations,
            rebuilds=snapshot.rebuilds,
            pair_sketches=snapshot.pair_sketches,
            accumulated_error=snapshot.accumulated_error,
            hot_column=snapshot.hot_column,
            hot_pair=snapshot.hot_pair,
        )


@dataclass(frozen=True)
class PlannerStats:
    """Planning summary of one served batch.

    Crossbar counts come from the executions' pruning metadata (scanned ==
    total when pruning is disabled); the routing counters record how many
    queries the cost planner sent to the PIM engines versus the host-scan
    path; the selectivity pair compares the planner's estimates with the
    fractions the executions actually selected.
    """

    #: Queries executed on the PIM engines / routed to the host scan.
    pim_queries: int
    host_routed: int
    #: Crossbars a full broadcast would have touched across the batch.
    crossbars_total: int
    #: Crossbars the filters actually scanned.
    crossbars_scanned: int
    #: Mean estimated and actual selected fractions (queries with estimates).
    estimated_selectivity: float
    actual_selectivity: float
    #: Semantic candidate-set cache counters of the batch (summed over the
    #: registered relations' caches); ``None`` when nothing was looked up.
    candidates: CandidateCacheStats | None = None

    @property
    def crossbars_skipped(self) -> int:
        return self.crossbars_total - self.crossbars_scanned

    @property
    def skip_rate(self) -> float:
        if self.crossbars_total == 0:
            return 0.0
        return self.crossbars_skipped / self.crossbars_total

    @classmethod
    def from_executions(
        cls,
        executions: Sequence[QueryExecution],
        host_routed: int = 0,
        candidates: CandidateCacheStats | None = None,
    ) -> PlannerStats | None:
        """Summarise the planner's work over a batch (``None`` if idle)."""
        estimated = [
            e for e in executions if e.estimated_selectivity is not None
        ]
        if not estimated and host_routed == 0:
            return None
        if candidates is not None and candidates.lookups == 0:
            candidates = None
        return cls(
            pim_queries=len(executions) - host_routed,
            host_routed=host_routed,
            crossbars_total=sum(e.crossbars_total for e in executions),
            crossbars_scanned=sum(e.crossbars_scanned for e in executions),
            estimated_selectivity=(
                float(np.mean([e.estimated_selectivity for e in estimated]))
                if estimated else 0.0
            ),
            actual_selectivity=(
                float(np.mean([e.selectivity for e in estimated]))
                if estimated else 0.0
            ),
            candidates=candidates,
        )


@dataclass(frozen=True)
class ServiceStats:
    """Throughput and latency summary of one served batch."""

    queries: int
    wall_time_s: float
    wall_qps: float
    modelled_time_s: float
    modelled_qps: float
    modelled_p50_s: float
    modelled_p95_s: float
    modelled_energy_j: float
    cache: CacheStats | None = None
    #: Scatter-gather figures; ``None`` when no execution was sharded.
    sharded: ShardStats | None = None
    #: Data-lifecycle state/counters; ``None`` for a service without DML.
    dml: DmlStats | None = None
    #: Crossbar-skipping and routing figures; ``None`` without a planner.
    planner: PlannerStats | None = None
    #: Feedback-loop counters; ``None`` while no execution has fed it.
    adaptive: AdaptiveStats | None = None

    @classmethod
    def from_executions(
        cls,
        executions: Sequence[QueryExecution],
        wall_time_s: float,
        cache: CacheStats | None = None,
        dml: DmlStats | None = None,
        host_routed: int = 0,
        candidates: CandidateCacheStats | None = None,
        adaptive: AdaptiveSnapshot | None = None,
    ) -> ServiceStats:
        """Summarise a batch of executions measured over ``wall_time_s``."""
        latencies = np.array([e.time_s for e in executions], dtype=float)
        count = len(latencies)
        modelled_total = float(latencies.sum()) if count else 0.0
        sharded: list[ShardedQueryExecution] = [
            e for e in executions if isinstance(e, ShardedQueryExecution)
        ]
        return cls(
            queries=count,
            wall_time_s=float(wall_time_s),
            wall_qps=count / wall_time_s if wall_time_s > 0 else 0.0,
            modelled_time_s=modelled_total,
            modelled_qps=count / modelled_total if modelled_total > 0 else 0.0,
            modelled_p50_s=float(np.percentile(latencies, 50)) if count else 0.0,
            modelled_p95_s=float(np.percentile(latencies, 95)) if count else 0.0,
            modelled_energy_j=float(sum(e.energy_j for e in executions)),
            cache=cache,
            sharded=ShardStats.from_executions(sharded),
            dml=dml,
            planner=PlannerStats.from_executions(
                executions, host_routed, candidates=candidates
            ),
            adaptive=AdaptiveStats.from_snapshot(adaptive),
        )

    def metrics(self) -> MetricsRegistry:
        """Every section's numeric fields as one :class:`MetricsRegistry`.

        This is the machine-parseable counterpart of :meth:`describe`: each
        section registers through the same
        :func:`~repro.obs.metrics.register_fields` path (counters for the
        accumulating fields, gauges for point-in-time ones), so the JSON and
        Prometheus renderings stay in lockstep with the dataclass fields
        without a hand-written formatter per section.
        """
        registry = MetricsRegistry()
        register_fields(
            registry,
            self,
            "service",
            gauges=(
                "wall_qps", "modelled_qps", "modelled_p50_s", "modelled_p95_s"
            ),
        )
        if self.cache is not None:
            register_fields(
                registry,
                self.cache,
                "program_cache",
                gauges=("capacity", "entries"),
            )
        if self.planner is not None:
            register_fields(
                registry,
                self.planner,
                "planner",
                gauges=("estimated_selectivity", "actual_selectivity"),
            )
            if self.planner.candidates is not None:
                register_fields(
                    registry,
                    self.planner.candidates,
                    "candidate_cache",
                    gauges=("entries", "capacity"),
                )
        if self.adaptive is not None:
            a = self.adaptive
            labels: dict[str, str] = {}
            if a.hot_column is not None:
                labels["hot_column"] = a.hot_column
            if a.hot_pair is not None:
                labels["hot_pair"] = "x".join(a.hot_pair)
            register_fields(
                registry,
                a,
                "adaptive",
                labels=labels or None,
                gauges=("accumulated_error",),
            )
        if self.sharded is not None:
            register_fields(
                registry,
                self.sharded,
                "sharded",
                gauges=(
                    "shards",
                    "shard_p50_s",
                    "shard_p95_s",
                    "parallel_speedup",
                    "max_shard_writes_per_row",
                ),
            )
        if self.dml is not None:
            register_fields(
                registry,
                self.dml,
                "dml",
                gauges=("live_rows", "tombstones", "slots_in_use", "capacity"),
            )
        return registry

    def to_json(self) -> dict:
        """JSON-serialisable export of every section (via :meth:`metrics`)."""
        return self.metrics().to_json()

    def render_json(self) -> str:
        """:meth:`to_json` as an indented JSON document."""
        return self.metrics().render_json()

    def render_prometheus(self) -> str:
        """Prometheus-style text exposition of the batch's metrics."""
        return self.metrics().render_prometheus()

    def describe(self) -> str:
        """One-paragraph human-readable summary."""
        lines = [
            f"{self.queries} queries in {self.wall_time_s:.3f}s wall "
            f"({self.wall_qps:.1f} q/s)",
            f"modelled: {self.modelled_time_s * 1e3:.3f} ms serial "
            f"({self.modelled_qps:.1f} q/s), "
            f"p50 {self.modelled_p50_s * 1e3:.3f} ms, "
            f"p95 {self.modelled_p95_s * 1e3:.3f} ms, "
            f"{self.modelled_energy_j * 1e3:.3f} mJ",
        ]
        if self.cache is not None:
            cache_line = (
                f"program cache: {self.cache.hits} hits / "
                f"{self.cache.misses} misses ({self.cache.hit_rate:.0%}), "
                f"{self.cache.evictions} evictions"
            )
            if self.cache.capacity is not None:
                occupancy = (
                    f"{self.cache.entries}/" if self.cache.entries is not None else ""
                )
                cache_line += f" (capacity {occupancy}{self.cache.capacity})"
            lines.append(cache_line)
        if self.planner is not None:
            p = self.planner
            lines.append(
                f"planner: {p.pim_queries} pim / {p.host_routed} host-routed, "
                f"scanned {p.crossbars_scanned} of {p.crossbars_total} "
                f"crossbars ({p.skip_rate:.0%} skipped), "
                f"selectivity est {p.estimated_selectivity:.4f} vs "
                f"actual {p.actual_selectivity:.4f}"
            )
            if p.candidates is not None:
                c = p.candidates
                lines.append(
                    f"candidate cache: {c.hits} hits / {c.misses} misses / "
                    f"{c.revalidations} re-validations "
                    f"({c.stale_crossbars} stale crossbars re-checked), "
                    f"{c.entries_checked} zone-map entries consulted, "
                    f"{c.evictions} evictions "
                    f"(capacity {c.entries}/{c.capacity})"
                )
        if self.adaptive is not None:
            a = self.adaptive
            hot = a.hot_column if a.hot_column is not None else "-"
            pair = (
                "x".join(a.hot_pair) if a.hot_pair is not None else "-"
            )
            lines.append(
                f"adaptive: {a.observations} observations, "
                f"{a.rebuilds} equi-depth rebuilds, "
                f"{a.pair_sketches} pair sketches, "
                f"error {a.accumulated_error:.2f} accumulating, "
                f"hot column {hot}, hot pair {pair}"
            )
        if self.sharded is not None:
            s = self.sharded
            lines.append(
                f"sharded (K={s.shards}): shard p50 {s.shard_p50_s * 1e3:.3f} ms, "
                f"p95 {s.shard_p95_s * 1e3:.3f} ms, "
                f"{s.parallel_speedup:.2f}x parallel speedup, "
                f"merge {s.merge_time_s * 1e6:.3f} us, "
                f"max shard wear {s.max_shard_writes_per_row} writes/row"
            )
        if self.dml is not None:
            d = self.dml
            lines.append(
                f"dml: {d.live_rows} live rows, {d.tombstones} tombstones "
                f"({d.fragmentation:.0%} fragmentation), "
                f"{d.inserted} inserted / {d.deleted} deleted, "
                f"{d.compactions} compactions ({d.slots_reclaimed} slots reclaimed)"
            )
        return "\n".join(lines)
