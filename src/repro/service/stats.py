"""Aggregate statistics of a batch served by the query service.

The individual :class:`~repro.core.executor.QueryExecution` objects carry the
device-accurate modelled latency/energy of each query; :class:`ServiceStats`
condenses a batch of them into the operational numbers a serving system is
judged by — throughput and tail latency.

Two clocks are reported side by side:

* **modelled** — the simulated PIM latency of the paper's timing model
  (p50/p95 over the batch, plus the serial sum);
* **wall** — how long the functional simulation itself took, which is what
  the service's vectorized host paths and program cache optimise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.executor import QueryExecution
from repro.service.cache import CacheStats


@dataclass(frozen=True)
class ServiceStats:
    """Throughput and latency summary of one served batch."""

    queries: int
    wall_time_s: float
    wall_qps: float
    modelled_time_s: float
    modelled_qps: float
    modelled_p50_s: float
    modelled_p95_s: float
    modelled_energy_j: float
    cache: Optional[CacheStats] = None

    @classmethod
    def from_executions(
        cls,
        executions: Sequence[QueryExecution],
        wall_time_s: float,
        cache: Optional[CacheStats] = None,
    ) -> "ServiceStats":
        """Summarise a batch of executions measured over ``wall_time_s``."""
        latencies = np.array([e.time_s for e in executions], dtype=float)
        count = len(latencies)
        modelled_total = float(latencies.sum()) if count else 0.0
        return cls(
            queries=count,
            wall_time_s=float(wall_time_s),
            wall_qps=count / wall_time_s if wall_time_s > 0 else 0.0,
            modelled_time_s=modelled_total,
            modelled_qps=count / modelled_total if modelled_total > 0 else 0.0,
            modelled_p50_s=float(np.percentile(latencies, 50)) if count else 0.0,
            modelled_p95_s=float(np.percentile(latencies, 95)) if count else 0.0,
            modelled_energy_j=float(sum(e.energy_j for e in executions)),
            cache=cache,
        )

    def describe(self) -> str:
        """One-paragraph human-readable summary."""
        lines = [
            f"{self.queries} queries in {self.wall_time_s:.3f}s wall "
            f"({self.wall_qps:.1f} q/s)",
            f"modelled: {self.modelled_time_s * 1e3:.3f} ms serial "
            f"({self.modelled_qps:.1f} q/s), "
            f"p50 {self.modelled_p50_s * 1e3:.3f} ms, "
            f"p95 {self.modelled_p95_s * 1e3:.3f} ms, "
            f"{self.modelled_energy_j * 1e3:.3f} mJ",
        ]
        if self.cache is not None:
            lines.append(
                f"program cache: {self.cache.hits} hits / "
                f"{self.cache.misses} misses ({self.cache.hit_rate:.0%})"
            )
        return "\n".join(lines)
