"""LRU cache of compiled NOR programs.

Compiling a predicate into a NOR program is deterministic in the predicate
and the row layout, so a service replaying similar WHERE clauses (or the same
pim-gb subgroups) can reuse the compiled
:class:`~repro.pim.logic.Program` verbatim.  :class:`ProgramCache` is a
drop-in :class:`~repro.core.stages.ProgramCompiler` with an LRU keyed by
``(predicate, layout)`` — layouts compare by identity, predicates by value
(the IR dataclasses are frozen).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from collections.abc import Callable, Hashable

from repro.core.stages import ProgramCompiler
from repro.db.encoding import RowLayout
from repro.db.query import Predicate
from repro.db.schema import Schema
from repro.obs.metrics import sub_stats
from repro.pim.logic import Program


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of a :class:`ProgramCache`.

    ``capacity`` and ``entries`` describe the cache the counters came from —
    they are carried by :meth:`ProgramCache.snapshot` (and preserved across
    the ``-`` used to delta two snapshots) so reports can show the occupancy
    next to the hit rate.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    capacity: int | None = None
    entries: int | None = None

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> CacheStats:
        """An immutable-in-spirit copy taken at a point in time."""
        return CacheStats(
            self.hits, self.misses, self.evictions, self.capacity, self.entries
        )

    def __sub__(self, other: CacheStats) -> CacheStats:
        return sub_stats(self, other, keep=("capacity", "entries"))


class ProgramCache(ProgramCompiler):
    """An LRU-cached :class:`~repro.core.stages.ProgramCompiler`.

    Programs are immutable once built (the executor only reads their
    operation list), so one cache can safely serve every engine of a
    :class:`~repro.service.service.QueryService` — distinct relations have
    distinct layouts and therefore distinct keys.
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self.stats = CacheStats()
        self._entries: OrderedDict[Hashable, Program] = OrderedDict()
        # Sharded scatter execution may compile from several shard threads at
        # once; the lock keeps the LRU bookkeeping (and the hit/miss counters)
        # consistent.  Compilation itself is pure, so holding the lock across
        # ``build()`` only serialises genuinely duplicate work.
        self._lock = threading.RLock()

    def __len__(self) -> int:
        return len(self._entries)

    def snapshot(self) -> CacheStats:
        """A point-in-time :class:`CacheStats` including capacity/occupancy."""
        with self._lock:
            stats = self.stats.snapshot()
            stats.capacity = self.capacity
            stats.entries = len(self._entries)
            return stats

    def clear(self) -> None:
        """Drop every cached program (the counters are kept)."""
        with self._lock:
            self._entries.clear()

    def fused_kernels(self) -> int:
        """Cached programs whose fused kernel has been compiled.

        Programs memoize their optimized NOR DAG and fused kernel on first
        fused execution (see :meth:`repro.pim.logic.Program.fused_kernel`),
        so a cache hit reuses the kernel along with the program — this counts
        how many entries currently carry one.
        """
        with self._lock:
            return sum(
                1
                for program in self._entries.values()
                if program._kernel is not None
            )

    def _lookup(self, key: Hashable, build: Callable[[], Program]) -> Program:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return entry
            self.stats.misses += 1
            program = build()
            self._entries[key] = program
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
            return program

    # ----------------------------------------------- ProgramCompiler interface
    def filter_program(
        self, predicate: Predicate, schema: Schema, layout: RowLayout
    ) -> Program:
        build = super().filter_program
        return self._lookup(
            ("filter", predicate, layout),
            lambda: build(predicate, schema, layout),
        )

    def group_program(self, group_values: dict[str, int], layout: RowLayout) -> Program:
        key = ("group", tuple(sorted(group_values.items())), layout)
        build = super().group_program
        return self._lookup(key, lambda: build(group_values, layout))

    def combine_program(
        self, group_values: dict[str, int], layout: RowLayout, include_remote: bool
    ) -> Program:
        key = (
            "combine",
            tuple(sorted(group_values.items())),
            include_remote,
            layout,
        )
        build = super().combine_program
        return self._lookup(
            key, lambda: build(group_values, layout, include_remote)
        )
