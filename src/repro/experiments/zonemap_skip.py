"""Zone-map crossbar skipping — modelled-latency and wall-clock wins.

The planner's acceptance story: on selective SSB-style point/range queries
over a day-clustered relation, consulting the per-crossbar zone maps and
broadcasting the filter program (and the aggregation-circuit pass) only to
candidate crossbars must

* return **bit-exact** rows with the unpruned broadcast, on both simulation
  backends,
* scan **strictly fewer** crossbars,
* cut the **modelled latency** by at least 2x at serving scale (the modelled
  relation is ``timing_scale`` times the stored one), and
* stay bit-exact **under DML**, with the zone-map maintenance charged to
  :class:`~repro.pim.stats.PimStats` (``zonemap-maintain``).

A control query on an unclustered column shows the other side of the coin:
zone maps cannot prune it, so the pruned path pays the (small) check cost on
top of the full broadcast.  A K=4 sharded service demonstrates shard-level
skipping: the point query's zone maps rule out every crossbar of three of
the four shards, which skip execution entirely.

``render`` produces the human-readable report and ``artifact`` the
``BENCH_planner.json`` trajectory record consumed by CI.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.config import DEFAULT_CONFIG
from repro.core.executor import PimQueryEngine
from repro.db import dml
from repro.db.query import Aggregate, Comparison, Query
from repro.db.relation import Relation
from repro.db.schema import Schema, dict_attribute, int_attribute
from repro.db.storage import StoredRelation
from repro.experiments import emit
from repro.pim.module import PimModule
from repro.service import QueryService

BACKENDS = ("packed", "bool")
REGIONS = [f"R{i}" for i in range(8)]

#: The modelled relation is this many times the stored one (2 pages stored
#: -> 2048 modelled pages, a serving-scale fact table).
DEFAULT_TIMING_SCALE = 1024.0

#: Day domain of the clustered column (the data is sorted by day, so each
#: crossbar covers a narrow day range — the classic zone-map-friendly load).
DAY_DOMAIN = 2048

QUERIES = {
    "point": Query(
        "point",
        Comparison("day", "==", 777),
        (Aggregate("sum", "amount"), Aggregate("count")),
    ),
    "range": Query(
        "range",
        Comparison("day", "between", low=700, high=760),
        (Aggregate("sum", "amount"), Aggregate("min", "amount")),
    ),
    # Unclustered column: every crossbar holds every region, so the zone
    # maps prune nothing and the pruned path only adds the check cost.
    "control": Query(
        "control",
        Comparison("region", "==", "R3"),
        (Aggregate("sum", "amount"), Aggregate("count")),
    ),
}

#: Queries the gates apply to (selective and prunable by clustering).
SELECTIVE = ("point", "range")


def orders_schema() -> Schema:
    return Schema("orders", [
        int_attribute("day", 16, source="fact"),
        int_attribute("amount", 20, source="fact"),
        dict_attribute("region", REGIONS, source="dim"),
    ])


def orders_relation(records: int, seed: int) -> Relation:
    rng = np.random.default_rng(seed)
    return Relation(orders_schema(), {
        "day": np.sort(rng.integers(0, DAY_DOMAIN, records).astype(np.uint64)),
        "amount": rng.integers(0, 1 << 20, records).astype(np.uint64),
        "region": rng.integers(0, len(REGIONS), records).astype(np.uint64),
    })


@dataclass
class QueryComparison:
    """One query's pruned-vs-unpruned measurement on one backend."""

    name: str
    rows_match: bool
    time_unpruned_s: float
    time_pruned_s: float
    crossbars_total: int
    scanned_unpruned: int
    scanned_pruned: int
    wall_unpruned_s: float
    wall_pruned_s: float

    @property
    def modelled_speedup(self) -> float:
        return self.time_unpruned_s / self.time_pruned_s if self.time_pruned_s else 0.0

    @property
    def wall_speedup(self) -> float:
        return self.wall_unpruned_s / self.wall_pruned_s if self.wall_pruned_s else 0.0


@dataclass
class BackendRun:
    """One backend's trip through the comparison suite."""

    backend: str
    comparisons: list[QueryComparison] = field(default_factory=list)
    #: Point-query rows after the DML interlude, pruned vs unpruned.
    dml_rows_match: bool = True
    #: Modelled seconds the DML interlude charged to zone-map maintenance.
    maintenance_time_s: float = 0.0
    #: Encoded result rows per query, for cross-backend comparison.
    rows: dict[str, dict] = field(default_factory=dict)


@dataclass
class ZonemapSkipResults:
    """Everything ``bench_zonemap_skip`` reports and gates on."""

    records: int
    timing_scale: float
    runs: list[BackendRun] = field(default_factory=list)
    shards: int = 0
    shards_skipped: int = 0
    sharded_rows_match: bool = True

    @property
    def bit_exact(self) -> bool:
        """Pruned rows == unpruned rows, everywhere, including under DML."""
        per_backend = all(
            comparison.rows_match and run.dml_rows_match
            for run in self.runs
            for comparison in run.comparisons
        )
        return per_backend and self.backends_agree and self.sharded_rows_match

    @property
    def backends_agree(self) -> bool:
        if len(self.runs) < 2:
            return True
        reference = self.runs[0].rows
        return all(run.rows == reference for run in self.runs[1:])

    @property
    def strictly_fewer_scanned(self) -> bool:
        """Every selective query scanned strictly fewer crossbars pruned."""
        return all(
            comparison.scanned_pruned < comparison.scanned_unpruned
            for run in self.runs
            for comparison in run.comparisons
            if comparison.name in SELECTIVE
        )

    @property
    def maintenance_charged(self) -> bool:
        return all(run.maintenance_time_s > 0.0 for run in self.runs)

    def min_selective_speedup(self) -> float:
        speedups = [
            comparison.modelled_speedup
            for run in self.runs
            for comparison in run.comparisons
            if comparison.name in SELECTIVE
        ]
        return min(speedups) if speedups else 0.0


def _build_engine(
    relation: Relation, backend: str, pruning: bool, timing_scale: float,
    vectorized: bool = True,
) -> PimQueryEngine:
    module = PimModule(DEFAULT_CONFIG.with_backend(backend))
    stored = StoredRelation(
        relation, module, label=f"orders/{backend}/{'pruned' if pruning else 'full'}",
        aggregation_width=20, reserve_bulk_aggregation=False,
    )
    return PimQueryEngine(
        stored, config=module.system_config, label="orders",
        timing_scale=timing_scale, vectorized=vectorized, pruning=pruning,
    )


def _wall_time(engine: PimQueryEngine, query: Query, repeats: int) -> float:
    start = time.perf_counter()
    for _ in range(repeats):
        engine.execute(query)
    return (time.perf_counter() - start) / repeats


def _run_backend(
    backend: str, records: int, seed: int, timing_scale: float, wall_repeats: int
) -> BackendRun:
    relation = orders_relation(records, seed)
    unpruned = _build_engine(relation, backend, False, timing_scale)
    pruned = _build_engine(orders_relation(records, seed), backend, True, timing_scale)
    # Wall-clock is measured on the gate-level engines, where skipping a
    # crossbar skips its NOR-by-NOR functional simulation too.
    gate_full = _build_engine(
        orders_relation(records, seed), backend, False, timing_scale,
        vectorized=False,
    )
    gate_pruned = _build_engine(
        orders_relation(records, seed), backend, True, timing_scale,
        vectorized=False,
    )
    run = BackendRun(backend=backend)

    for name, query in QUERIES.items():
        full = unpruned.execute(query)
        skip = pruned.execute(query)
        run.comparisons.append(QueryComparison(
            name=name,
            rows_match=full.rows == skip.rows,
            time_unpruned_s=full.time_s,
            time_pruned_s=skip.time_s,
            crossbars_total=full.crossbars_total,
            scanned_unpruned=full.crossbars_scanned,
            scanned_pruned=skip.crossbars_scanned,
            wall_unpruned_s=_wall_time(gate_full, query, wall_repeats),
            wall_pruned_s=_wall_time(gate_pruned, query, wall_repeats),
        ))
        run.rows[name] = {str(k): v for k, v in sorted(skip.rows.items())}

    # DML interlude: tombstone a day slice, insert records with a brand-new
    # day value (the zone maps must widen), then prove the pruned point query
    # still agrees with the unpruned one — on the same mutated relation.
    fresh_day = DAY_DOMAIN - 1
    delete = Comparison("day", "between", low=400, high=420)
    inserts = [
        {"day": fresh_day, "amount": 1000 + i, "region": REGIONS[i % len(REGIONS)]}
        for i in range(64)
    ]
    probe = Query(
        "dml-probe",
        Comparison("day", "==", fresh_day),
        (Aggregate("sum", "amount"), Aggregate("count")),
    )
    maintenance = 0.0
    for engine in (unpruned, pruned):
        from repro.pim.controller import PimExecutor

        executor = PimExecutor(engine.config)
        dml.execute_delete(engine.stored, delete, executor, vectorized=True)
        dml.execute_insert(engine.stored, inserts, executor)
        maintenance += executor.stats.time_by_phase.get("zonemap-maintain", 0.0)
    full = unpruned.execute(probe)
    skip = pruned.execute(probe)
    run.dml_rows_match = full.rows == skip.rows and bool(full.rows)
    run.maintenance_time_s = maintenance
    run.rows["dml-probe"] = {str(k): v for k, v in sorted(skip.rows.items())}
    return run


def _run_sharded(
    records: int, seed: int, timing_scale: float, shards: int
) -> tuple[int, bool]:
    """Shard-level skipping through the service: ``(skipped, rows_match)``."""
    relation = orders_relation(records, seed)
    service = QueryService()
    engine = service.register_sharded(
        "orders", relation, shards=shards, timing_scale=timing_scale,
        aggregation_width=20, reserve_bulk_aggregation=False,
    )
    execution = service.execute(QUERIES["point"])
    engine.close()
    reference = _build_engine(
        orders_relation(records, seed), DEFAULT_CONFIG.backend, False, timing_scale
    ).execute(QUERIES["point"])
    return execution.shards_skipped, execution.rows == reference.rows


def run_zonemap_skip(
    records: int = 65536,
    seed: int = 23,
    timing_scale: float = DEFAULT_TIMING_SCALE,
    shards: int = 4,
    wall_repeats: int = 3,
) -> ZonemapSkipResults:
    """Run the pruned-vs-unpruned comparison on every backend."""
    results = ZonemapSkipResults(records=records, timing_scale=timing_scale)
    for backend in BACKENDS:
        results.runs.append(
            _run_backend(backend, records, seed, timing_scale, wall_repeats)
        )
    results.shards = shards
    results.shards_skipped, results.sharded_rows_match = _run_sharded(
        records, seed, timing_scale, shards
    )
    return results


def render(results: ZonemapSkipResults) -> str:
    """Human-readable report."""
    lines = [
        f"Zone-map crossbar skipping: {results.records} records "
        f"(modelled x{results.timing_scale:.0f}), queries pruned vs broadcast",
        f"{'backend':<8} {'query':<9} {'scanned':>12} {'modelled':>20} "
        f"{'speedup':>8} {'wall':>8}",
    ]
    for run in results.runs:
        for c in run.comparisons:
            lines.append(
                f"{run.backend:<8} {c.name:<9} "
                f"{c.scanned_pruned:>4}/{c.scanned_unpruned:<4}of{c.crossbars_total:<4}"
                f"{c.time_pruned_s * 1e6:>9.2f}/{c.time_unpruned_s * 1e6:<9.2f}us"
                f"{c.modelled_speedup:>7.2f}x {c.wall_speedup:>7.2f}x"
            )
    for run in results.runs:
        lines.append(
            f"{run.backend} DML probe bit-exact: "
            f"{'yes' if run.dml_rows_match else 'NO'}; zone-map maintenance "
            f"charged {run.maintenance_time_s * 1e6:.3f} us"
        )
    lines.append(
        f"sharded (K={results.shards}): {results.shards_skipped} shards "
        f"skipped on the point query, rows "
        f"{'match' if results.sharded_rows_match else 'DIFFER'}"
    )
    lines.append(
        f"bit-exact: {'yes' if results.bit_exact else 'NO'}; "
        f"strictly fewer crossbars on selective queries: "
        f"{'yes' if results.strictly_fewer_scanned else 'NO'}; "
        f"min selective speedup {results.min_selective_speedup():.2f}x"
    )
    return "\n".join(lines)


def artifact(results: ZonemapSkipResults) -> dict:
    """The ``BENCH_planner.json`` trajectory record."""
    return {
        "benchmark": "zonemap_skip",
        "records": results.records,
        "timing_scale": results.timing_scale,
        "bit_exact": results.bit_exact,
        "backends_agree": results.backends_agree,
        "strictly_fewer_scanned": results.strictly_fewer_scanned,
        "maintenance_charged": results.maintenance_charged,
        "min_selective_speedup": results.min_selective_speedup(),
        "shards": results.shards,
        "shards_skipped": results.shards_skipped,
        "runs": [
            {
                "backend": run.backend,
                "dml_rows_match": run.dml_rows_match,
                "maintenance_time_s": run.maintenance_time_s,
                "queries": [
                    {
                        "name": c.name,
                        "rows_match": c.rows_match,
                        "time_unpruned_s": c.time_unpruned_s,
                        "time_pruned_s": c.time_pruned_s,
                        "modelled_speedup": c.modelled_speedup,
                        "wall_speedup": c.wall_speedup,
                        "crossbars_total": c.crossbars_total,
                        "scanned_unpruned": c.scanned_unpruned,
                        "scanned_pruned": c.scanned_pruned,
                    }
                    for c in run.comparisons
                ],
            }
            for run in results.runs
        ],
    }


def write_artifact(results: ZonemapSkipResults, path) -> None:
    """Persist the schema-versioned trajectory artifact as JSON."""
    emit.write_artifact(
        path,
        "zonemap_skip",
        artifact(results),
        gates={
            "bit_exact": results.bit_exact,
            "backends_agree": results.backends_agree,
            "strictly_fewer_scanned": results.strictly_fewer_scanned,
            "maintenance_charged": results.maintenance_charged,
        },
    )
