"""Observability acceptance: trace completeness, null-path cost, explain goldens.

The telemetry layer's contract has three legs, and this experiment gates all
of them on the 13-query SSB workload:

* **Trace completeness** — with tracing enabled, every query's span tree
  must account for 100% of the modelled execution: re-folding the charge
  events of the trace (:func:`~repro.obs.trace.fold_trace_charges`) must
  reproduce the execution's ``time_by_phase`` and ``energy_by_component``
  **bit-for-bit**.  A near-match would mean some stage charges outside any
  span (or twice); exact float equality is achievable because the charge
  events replay in the stats object's own accumulation order.
* **Disabled-path cost** — tracing off must be practically free.  The
  instrumentation cannot be compiled out, so the gate measures the two
  things the disabled path actually executes — entering the shared no-op
  span and the ``trace_hook is None`` branch — and projects their cost over
  the span/charge volume of a real traced replay.  That projection must
  stay under :data:`MAX_DISABLED_OVERHEAD` of the measured warm replay.
  The measured enabled-tracing overhead is recorded alongside (it is not
  gated: it pays for the retained span trees).
* **Explain stability** — :meth:`~repro.service.service.QueryService.explain`
  renders modelled quantities only, so its text must be identical on the
  packed and boolean simulation backends for the same query.

``render`` produces the human-readable report and ``artifact`` the
``BENCH_obs.json`` trajectory record consumed by CI.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.config import DEFAULT_CONFIG
from repro.db.storage import StoredRelation
from repro.experiments import emit
from repro.experiments.common import default_scale_factor
from repro.obs.trace import SpanTracer, fold_trace_charges
from repro.pim.module import PimModule
from repro.service import QueryService
from repro.ssb import ALL_QUERIES, QUERY_ORDER, build_ssb_prejoined, generate
from repro.ssb.prejoined import max_aggregated_width

#: Projected fraction of the warm replay the disabled tracer may cost.
MAX_DISABLED_OVERHEAD = 0.02

#: SSB queries whose ``explain()`` rendering is compared across backends —
#: a scalar-filter query and a deep GROUP-BY.
EXPLAIN_QUERIES = ("Q1.1", "Q3.2")

#: Iterations of the null-span / null-hook microbenchmark loops.
_MICRO_ITERS = 200_000


@dataclass
class TraceCompleteness:
    """One query's trace-vs-stats reconciliation."""

    query: str
    time_match: bool
    energy_match: bool
    spans: int
    charges: int
    modelled_s: float

    @property
    def complete(self) -> bool:
        return self.time_match and self.energy_match


@dataclass
class ObservabilityResults:
    """Everything ``bench_observability`` reports and gates on."""

    scale_factor: float
    records: int
    repeats: int
    #: Warm 13-query replay wall time, tracing disabled (best of repeats).
    disabled_wall_s: float
    #: The same warm replay with tracing enabled (best of repeats).
    traced_wall_s: float
    #: Cost of one ``with NULL_SPAN`` entry/exit on this host.
    null_span_cost_s: float
    #: Cost of one ``trace_hook is None`` branch on this host.
    null_hook_cost_s: float
    #: Span/charge volume of one traced replay (what the null costs scale by).
    spans_per_replay: int = 0
    charges_per_replay: int = 0
    completeness: list[TraceCompleteness] = field(default_factory=list)
    explain_queries: tuple[str, ...] = EXPLAIN_QUERIES
    explain_stable: bool = True
    #: The packed backend's rendering of the first explain query (golden).
    explain_text: str = ""

    @property
    def traced_overhead(self) -> float:
        """Measured fractional overhead of tracing *enabled* (not gated)."""
        if self.disabled_wall_s <= 0:
            return 0.0
        return self.traced_wall_s / self.disabled_wall_s - 1.0

    @property
    def projected_disabled_overhead(self) -> float:
        """Projected fractional cost of the disabled path on a warm replay."""
        if self.disabled_wall_s <= 0:
            return 0.0
        projected = (
            self.spans_per_replay * self.null_span_cost_s
            + self.charges_per_replay * self.null_hook_cost_s
        )
        return projected / self.disabled_wall_s

    @property
    def null_overhead_ok(self) -> bool:
        return self.projected_disabled_overhead < MAX_DISABLED_OVERHEAD

    @property
    def trace_complete(self) -> bool:
        """Every query's trace reproduced its stats bit-for-bit."""
        return bool(self.completeness) and all(
            c.complete for c in self.completeness
        )


def _build_service(backend: str, prejoined, tracing: bool) -> QueryService:
    config = DEFAULT_CONFIG.with_backend(backend)
    stored = StoredRelation(
        prejoined,
        PimModule(config),
        label=f"obs/{backend}",
        aggregation_width=max_aggregated_width(prejoined),
        reserve_bulk_aggregation=False,
    )
    service = QueryService(tracing=tracing, trace_sink=None)
    service.register("ssb", stored, config=config, label="ssb")
    return service


def _workload():
    return [ALL_QUERIES[name] for name in QUERY_ORDER]


def _best_replay_wall(service: QueryService, repeats: int) -> float:
    """Best-of-``repeats`` wall time of the warm 13-query replay."""
    workload = _workload()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for query in workload:
            service.execute(query)
        best = min(best, time.perf_counter() - start)
    return best


def _null_span_cost() -> float:
    """Per-entry cost of the disabled tracer's shared no-op span."""
    tracer = SpanTracer(enabled=False)
    start = time.perf_counter()
    for _ in range(_MICRO_ITERS):
        with tracer.span("x"):
            pass
    return (time.perf_counter() - start) / _MICRO_ITERS


def _null_hook_cost() -> float:
    """Per-charge cost of the ``trace_hook is None`` branch."""
    hook = None
    start = time.perf_counter()
    for _ in range(_MICRO_ITERS):
        if hook is not None:  # pragma: no cover - never taken
            hook("time", "x", 0.0)
    return (time.perf_counter() - start) / _MICRO_ITERS


def _reconcile(service: QueryService) -> list[TraceCompleteness]:
    """Execute every SSB query traced and fold each trace against its stats."""
    records: list[TraceCompleteness] = []
    service.tracer.enabled = True
    try:
        service.tracer.clear()
        for name in QUERY_ORDER:
            execution = service.execute(ALL_QUERIES[name])
            root = service.tracer.pop_trace()
            folded = fold_trace_charges(root)
            spans = sum(1 for _ in root.iter_spans())
            charges = sum(len(s.charges) for s in root.iter_spans())
            records.append(TraceCompleteness(
                query=name,
                time_match=folded["time"] == dict(execution.stats.time_by_phase),
                energy_match=(
                    folded["energy"] == dict(execution.stats.energy_by_component)
                ),
                spans=spans,
                charges=charges,
                modelled_s=execution.time_s,
            ))
    finally:
        service.tracer.enabled = False
    return records


def run_observability(
    scale_factor: float | None = None, repeats: int = 3
) -> ObservabilityResults:
    """Run the three-legged observability acceptance experiment."""
    scale_factor = (
        default_scale_factor() if scale_factor is None else scale_factor
    )
    dataset = generate(scale_factor=scale_factor)
    prejoined = build_ssb_prejoined(dataset.database)

    service = _build_service("packed", prejoined, tracing=False)
    for query in _workload():  # warm programs, plans, adaptive state
        service.execute(query)

    disabled_wall = _best_replay_wall(service, repeats)

    completeness = _reconcile(service)
    spans = sum(c.spans for c in completeness)
    charges = sum(c.charges for c in completeness)

    service.tracer.enabled = True
    try:
        traced_wall = _best_replay_wall(service, repeats)
    finally:
        service.tracer.enabled = False
        service.tracer.clear()

    # Explain goldens: fresh per-backend services so both render from an
    # identical (cold) adaptive/cache state.
    renders: dict[str, list[str]] = {}
    for backend in ("packed", "bool"):
        golden = _build_service(backend, prejoined, tracing=False)
        renders[backend] = [
            golden.explain(ALL_QUERIES[name]).render()
            for name in EXPLAIN_QUERIES
        ]
    explain_stable = renders["packed"] == renders["bool"]

    return ObservabilityResults(
        scale_factor=scale_factor,
        records=len(prejoined),
        repeats=repeats,
        disabled_wall_s=disabled_wall,
        traced_wall_s=traced_wall,
        null_span_cost_s=_null_span_cost(),
        null_hook_cost_s=_null_hook_cost(),
        spans_per_replay=spans,
        charges_per_replay=charges,
        completeness=completeness,
        explain_stable=explain_stable,
        explain_text=renders["packed"][0],
    )


def render(results: ObservabilityResults) -> str:
    """The human-readable report."""
    lines = [
        f"observability acceptance (SF={results.scale_factor}, "
        f"{results.records} rows, best of {results.repeats})",
        f"warm replay: {results.disabled_wall_s:.4f}s off / "
        f"{results.traced_wall_s:.4f}s traced "
        f"({results.traced_overhead:+.1%} enabled overhead, not gated)",
        f"disabled path: {results.spans_per_replay} spans x "
        f"{results.null_span_cost_s * 1e9:.0f}ns + "
        f"{results.charges_per_replay} charges x "
        f"{results.null_hook_cost_s * 1e9:.0f}ns = "
        f"{results.projected_disabled_overhead:.3%} of the replay "
        f"(gate <{MAX_DISABLED_OVERHEAD:.0%}): "
        f"{'ok' if results.null_overhead_ok else 'FAIL'}",
        f"trace completeness ({len(results.completeness)} queries):",
    ]
    for c in results.completeness:
        lines.append(
            f"  {c.query}: {c.spans} spans, {c.charges} charges, "
            f"{c.modelled_s * 1e3:.3f} ms modelled — "
            f"time {'ok' if c.time_match else 'DIFF'}, "
            f"energy {'ok' if c.energy_match else 'DIFF'}"
        )
    lines.append(
        f"explain golden ({', '.join(results.explain_queries)}): "
        f"packed vs bool "
        f"{'identical' if results.explain_stable else 'DIFFER'}"
    )
    return "\n".join(lines)


def artifact(results: ObservabilityResults) -> dict:
    """The ``BENCH_obs.json`` trajectory record."""
    return {
        "scale_factor": results.scale_factor,
        "records": results.records,
        "repeats": results.repeats,
        "disabled_wall_s": results.disabled_wall_s,
        "traced_wall_s": results.traced_wall_s,
        "traced_overhead": results.traced_overhead,
        "null_span_cost_s": results.null_span_cost_s,
        "null_hook_cost_s": results.null_hook_cost_s,
        "spans_per_replay": results.spans_per_replay,
        "charges_per_replay": results.charges_per_replay,
        "projected_disabled_overhead": results.projected_disabled_overhead,
        "completeness": [
            {
                "query": c.query,
                "time_match": c.time_match,
                "energy_match": c.energy_match,
                "spans": c.spans,
                "charges": c.charges,
                "modelled_s": c.modelled_s,
            }
            for c in results.completeness
        ],
        "explain_queries": list(results.explain_queries),
        "explain_stable": results.explain_stable,
        "explain_text": results.explain_text,
    }


def write_artifact(results: ObservabilityResults, path) -> None:
    """Persist the schema-versioned trajectory artifact as JSON."""
    emit.write_artifact(
        path,
        "observability",
        artifact(results),
        gates={
            "trace_complete": results.trace_complete,
            "null_overhead_ok": results.null_overhead_ok,
            "explain_stable": results.explain_stable,
        },
    )
