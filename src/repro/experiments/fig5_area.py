"""Fig. 5 — PIM chip area breakdown.

The paper reports a 346 mm^2 chip with the aggregation circuits occupying
13.9 % of the area.  The analytical area model reproduces the breakdown and
additionally reports the overhead of adding the aggregation circuits relative
to the PIMDB chip (which lacks them).
"""

from __future__ import annotations


from repro.config import SystemConfig
from repro.experiments.common import format_table
from repro.memory.area import ChipAreaModel

#: The paper's Fig. 5 percentages, for side-by-side reporting.
PAPER_BREAKDOWN = {
    "Crossbar peripherals": 0.404,
    "Aggregation circuits": 0.139,
    "Crossbars": 0.1924,
    "Bank peripherals": 0.1883,
    "PIM controllers": 0.0684,
    "Wires": 0.0076,
}


def fig5_rows(config: SystemConfig = None) -> list[tuple[str, float, float, float]]:
    """Rows of (component, area mm^2, measured share, paper share)."""
    model = ChipAreaModel(config)
    areas = model.component_areas_mm2()
    shares = model.breakdown()
    return [
        (name, areas[name], shares[name], PAPER_BREAKDOWN.get(name, 0.0))
        for name in areas
    ]


def render(config: SystemConfig = None) -> str:
    """Fig. 5 as printable text."""
    model = ChipAreaModel(config)
    rows = [
        (name, f"{area:.1f}", f"{share * 100:.2f}%", f"{paper * 100:.2f}%")
        for name, area, share, paper in fig5_rows(config)
    ]
    table = format_table(
        ["Component", "Area [mm^2]", "Share (this repro)", "Share (paper)"], rows
    )
    footer = (
        f"\nTotal chip area: {model.chip_area_mm2:.1f} mm^2 "
        f"(paper: 346 mm^2); aggregation-circuit overhead vs PIMDB chip: "
        f"{model.aggregation_circuit_overhead() * 100:.1f}%"
    )
    return table + footer
