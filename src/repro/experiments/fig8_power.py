"""Fig. 8 — peak power of a single PIM chip for the SSB queries."""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.common import (
    PIM_CONFIGS,
    QueryRecord,
    format_table,
    geomean,
    records_by,
)
from repro.experiments.fig7_energy import PIM_AGGREGATION_QUERIES
from repro.ssb import QUERY_ORDER

#: The paper reports every query staying below 44 W per chip.
PAPER_PEAK_LIMIT_W = 44.0


def fig8_rows(records: Sequence[QueryRecord], configs: Sequence[str] = PIM_CONFIGS):
    """One row per query: peak chip power (watts) per PIM configuration."""
    indexed = records_by(records)
    rows = []
    for query in QUERY_ORDER:
        row: list[object] = [query]
        for config in configs:
            record = indexed.get((config, query))
            row.append(record.peak_power_w if record else float("nan"))
        rows.append(row)
    return rows


def pimdb_power_ratio(records: Sequence[QueryRecord]) -> float:
    """Geo-mean peak power of PIMDB over one-xb on the PIM-aggregation queries."""
    indexed = records_by(records)
    ratios = []
    for query in PIM_AGGREGATION_QUERIES:
        one = indexed.get(("one_xb", query))
        pimdb = indexed.get(("pimdb", query))
        if one and pimdb and one.peak_power_w > 0:
            ratios.append(pimdb.peak_power_w / one.peak_power_w)
    return geomean(ratios)


def render(records: Sequence[QueryRecord], configs: Sequence[str] = PIM_CONFIGS) -> str:
    """Fig. 8 as printable text."""
    rows = []
    for row in fig8_rows(records, configs):
        rows.append([row[0]] + [f"{value:.2f}" for value in row[1:]])
    table = format_table(["Query"] + [f"{c} [W]" for c in configs], rows)
    within = all(
        r.peak_power_w <= PAPER_PEAK_LIMIT_W for r in records if r.config in configs
    )
    footer = (
        f"\ngeo-mean PIMDB/one_xb peak power on PIM-aggregation queries: "
        f"{pimdb_power_ratio(records):.2f}x (paper: 2.92x); "
        f"all below {PAPER_PEAK_LIMIT_W:.0f} W per chip: {within}"
    )
    return table + footer
