"""Self-tuning storage under churn — the feedback loop's acceptance story.

An *unclustered* tiling of the pre-joined SSB relation (rows shuffled, so
every crossbar spans nearly the full key domain) serves selective point
queries on ``lo_orderkey``.  Zone maps cannot prune a single crossbar: every
probe scans the whole relation.  Then the closed loop runs:

1. **Churn** — a range DELETE tombstones ~35% of the rows (crossing the
   compaction threshold), INSERTs reuse a few slots, a point UPDATE patches
   a surviving key.  DML runs *pruned*: each statement consults the zone
   maps like the query engine and a lockstep twin replays it broadcast to
   prove the tombstoned/patched bits identical.
2. **Feedback** — replayed point queries on the deleted key range estimate
   non-zero selectivity but select nothing; the per-column error
   accumulator crosses its threshold and rebuilds the ``lo_orderkey``
   histogram equi-depth from the live rows.  The same executions make
   ``lo_orderkey`` the relation's hottest column by scan volume.
3. **Re-clustering compaction** — fragmentation has crossed the threshold,
   so compaction rewrites the live rows densely, *sorted by the hottest
   column*, and rebuilds zone maps and histograms exactly.
4. **Payoff** — the same point probes now touch a handful of crossbars: the
   cold zone-map walk checks >= 8x fewer entries and the filters scan
   >= 8x fewer crossbars.

Gates (both simulation backends, identical modelled stats):

* bit-exact probe rows packed vs bool, every phase;
* bit-identical per-execution ``PimStats`` phase timings packed vs bool;
* pruned DELETE/UPDATE bit-exact with the broadcast twin (valid masks and
  ground-truth columns compared after every statement);
* >= 1 error-triggered equi-depth rebuild, hottest column == probe column;
* compaction performed and clustered by the probe column;
* >= 8x reduction in cold-walk zone-map entries and in crossbars scanned.

``render`` produces the human-readable report and ``artifact`` the
``BENCH_cluster.json`` trajectory record consumed by CI.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.config import DEFAULT_CONFIG
from repro.core.executor import PimQueryEngine
from repro.db import dml
from repro.db.query import Aggregate, Comparison, Query
from repro.db.relation import Relation
from repro.db.storage import StoredRelation
from repro.db.update import execute_update
from repro.experiments import emit
from repro.experiments.common import default_scale_factor
from repro.pim.controller import PimExecutor
from repro.pim.module import PimModule
from repro.planner.planner import RelationStatistics
from repro.ssb import build_ssb_prejoined, generate
from repro.ssb.prejoined import max_aggregated_width

BACKENDS = ("packed", "bool")

#: Column the probes filter on and compaction learns to cluster by.
PROBE_COLUMN = "lo_orderkey"

#: Slot pages of the tiled relation (12 pages -> a ~9x cold-walk entry
#: ratio: unclustered 12 + 12*32 entries vs clustered 12 + 1*32).
DEFAULT_PAGES = 12

#: Point probes per measured phase.
DEFAULT_PROBES = 12

#: Queries replayed against the deleted key range to feed the error
#: accumulator (each contributes ~1.0 relative error to the probe column).
DEFAULT_ERROR_QUERIES = 8

#: Fraction of the key domain the churn DELETE tombstones.
DELETE_FRACTION = 0.35

#: Records re-inserted (into reused tombstone slots) during churn.
DEFAULT_INSERTS = 64

#: The acceptance gates.
MIN_ENTRY_REDUCTION = 8.0
MIN_SCAN_REDUCTION = 8.0


def _build_unclustered(scale_factor: float, pages: int, seed: int) -> Relation:
    """Tile the pre-joined SSB relation to ``pages`` pages and shuffle it.

    Shuffling makes the relation unclustered *by construction*: every
    crossbar's ``lo_orderkey`` bounds span nearly the whole key domain, so
    zone maps prune nothing until compaction re-clusters.
    """
    dataset = generate(scale_factor=scale_factor, skew=0.5, seed=42)
    prejoined = build_ssb_prejoined(dataset.database)
    target = pages * DEFAULT_CONFIG.pim.records_per_page
    reps = -(-target // len(prejoined))  # ceil
    rng = np.random.default_rng(seed)
    order = rng.permutation(target)
    columns = {
        name: np.tile(column, reps)[:target][order]
        for name, column in prejoined.columns.items()
    }
    return Relation(prejoined.schema, columns)


def _point_query(key: int, tag: str) -> Query:
    return Query(
        name=f"probe-{tag}-{key}",
        predicate=Comparison(PROBE_COLUMN, "==", int(key)),
        aggregates=(Aggregate("sum", "lo_revenue", "revenue"),),
    )


@dataclass
class PhaseMeasurement:
    """One engine's trip through one measured probe phase."""

    #: Per-probe result rows (encoded), for cross-engine comparison.
    rows: list[dict] = field(default_factory=list)
    #: Per-probe PimStats fingerprints, for cross-backend comparison.
    fingerprints: list[dict] = field(default_factory=list)
    #: Crossbars the probes' filters scanned, summed.
    crossbars_scanned: int = 0
    #: Zone-map entries a *cold* cache-free walk checks for the probes.
    cold_entries: int = 0


@dataclass
class EngineRun:
    """One backend's full trip through the workload."""

    backend: str
    wall_s: float = 0.0
    pre: PhaseMeasurement = field(default_factory=PhaseMeasurement)
    post: PhaseMeasurement = field(default_factory=PhaseMeasurement)
    rebuilds: int = 0
    observations: int = 0
    hot_column: str | None = None
    compaction_performed: bool = False
    clustered_by: str | None = None
    fragmentation_before: float = 0.0


@dataclass
class ClusteringResults:
    """Everything ``bench_clustering`` reports and gates on."""

    scale_factor: float
    pages: int
    probes: int
    error_queries: int
    runs: list[EngineRun] = field(default_factory=list)
    #: Pruned DELETE/UPDATE left bit-identical state to the broadcast twin.
    dml_lockstep: bool = True

    def run(self, backend: str) -> EngineRun:
        for candidate in self.runs:
            if candidate.backend == backend:
                return candidate
        raise KeyError(f"no run for {backend}")

    @property
    def backends_agree(self) -> bool:
        """Probe rows identical across the simulation backends."""
        reference = self.runs[0]
        return all(
            run.pre.rows == reference.pre.rows
            and run.post.rows == reference.post.rows
            for run in self.runs[1:]
        )

    @property
    def stats_identical(self) -> bool:
        """Per-probe modelled stats identical across the backends."""
        reference = self.runs[0]
        return all(
            run.pre.fingerprints == reference.pre.fingerprints
            and run.post.fingerprints == reference.post.fingerprints
            for run in self.runs[1:]
        )

    @property
    def loop_closed(self) -> bool:
        """Every backend rebuilt, ranked the probe column hottest and
        re-clustered by it."""
        return all(
            run.rebuilds >= 1
            and run.hot_column == PROBE_COLUMN
            and run.compaction_performed
            and run.clustered_by == PROBE_COLUMN
            for run in self.runs
        )

    def entry_reduction(self, backend: str) -> float:
        run = self.run(backend)
        if run.post.cold_entries <= 0:
            return float("inf") if run.pre.cold_entries > 0 else 1.0
        return run.pre.cold_entries / run.post.cold_entries

    def scan_reduction(self, backend: str) -> float:
        run = self.run(backend)
        if run.post.crossbars_scanned <= 0:
            return float("inf") if run.pre.crossbars_scanned > 0 else 1.0
        return run.pre.crossbars_scanned / run.post.crossbars_scanned

    def min_entry_reduction(self) -> float:
        return min(self.entry_reduction(r.backend) for r in self.runs)

    def min_scan_reduction(self) -> float:
        return min(self.scan_reduction(r.backend) for r in self.runs)


def _copy_relation(relation: Relation) -> Relation:
    return Relation(
        relation.schema,
        {name: column.copy() for name, column in relation.columns.items()},
    )


def _build_engine(
    relation: Relation, backend: str, label: str, aggregation_width: int
) -> PimQueryEngine:
    system = DEFAULT_CONFIG.with_backend(backend)
    module = PimModule(system)
    stored = StoredRelation(
        relation, module, label=label,
        aggregation_width=aggregation_width,
        reserve_bulk_aggregation=False,
    )
    return PimQueryEngine(
        stored, config=system, label=label, vectorized=True, pruning=True,
    )


def _fingerprint(execution) -> dict:
    """The cross-backend identity of one execution's modelled stats."""
    stats = execution.stats
    return {
        "time_by_phase": dict(sorted(stats.time_by_phase.items())),
        "logic_ops": stats.logic_ops,
        "bits_read": stats.bits_read,
        "bits_written": stats.bits_written,
        "energy_j": stats.total_energy_j,
    }


def _cold_entries(engine: PimQueryEngine, query: Query) -> int:
    """Zone-map entries a cache-free cold walk checks for one predicate.

    A fresh :class:`RelationStatistics` over the engine's *maintained* zone
    maps, with the semantic cache disabled, bills the full two-level walk —
    decoupling the entry count from the engine's cache state.
    """
    stored = engine.stored
    cold = RelationStatistics(
        stored.statistics.zonemaps,
        stored.statistics.selectivity,
        semantic_cache=False,
    )
    decision = cold.plan(
        query.predicate, stored.partition_attributes,
        engine.config.pim.crossbars_per_page,
    )
    return decision.entries_checked


def _measure_phase(
    engine: PimQueryEngine, probes: list[Query]
) -> PhaseMeasurement:
    measurement = PhaseMeasurement()
    for query in probes:
        measurement.cold_entries += _cold_entries(engine, query)
        execution = engine.execute(query)
        measurement.rows.append(
            {str(k): dict(v) for k, v in sorted(execution.rows.items())}
        )
        measurement.fingerprints.append(_fingerprint(execution))
        measurement.crossbars_scanned += execution.crossbars_scanned
    return measurement


def _lockstep_equal(stored: StoredRelation, twin: StoredRelation) -> bool:
    """Bit-level agreement of the pruned engine with the broadcast twin."""
    if not np.array_equal(stored.valid_mask(0), twin.valid_mask(0)):
        return False
    return all(
        np.array_equal(stored.relation.columns[name], twin.relation.columns[name])
        for name in stored.relation.schema.names
    )


def run_clustering(
    scale_factor: float | None = None,
    pages: int = DEFAULT_PAGES,
    probes: int = DEFAULT_PROBES,
    error_queries: int = DEFAULT_ERROR_QUERIES,
    inserts: int = DEFAULT_INSERTS,
    seed: int = 11,
) -> ClusteringResults:
    """Run the closed loop on every backend plus the broadcast-DML twin."""
    if scale_factor is None:
        scale_factor = default_scale_factor()
    unclustered = _build_unclustered(scale_factor, pages, seed)
    aggregation_width = max_aggregated_width(unclustered)
    keys = unclustered.columns[PROBE_COLUMN]
    key_max = int(keys.max())
    delete_below = int(key_max * DELETE_FRACTION)

    # Probes target surviving keys, spread across the surviving domain.
    rng = np.random.default_rng(seed)
    survivors = np.unique(keys[keys > delete_below])
    probe_keys = survivors[
        np.linspace(0, len(survivors) - 1, probes).astype(int)
    ]
    probe_queries = [_point_query(int(k), "live") for k in probe_keys]
    # Error feeders target tombstoned keys: the stale histogram estimates
    # non-zero selectivity, the scan selects nothing, and each miss adds
    # ~1.0 relative error to the probe column's accumulator.
    doomed = np.unique(keys[keys <= delete_below])
    error_keys = doomed[
        np.linspace(0, len(doomed) - 1, error_queries).astype(int)
    ]
    error_feed = [_point_query(int(k), "gone") for k in error_keys]

    # Churn statements (shared verbatim by every engine and the twin).
    delete_predicate = Comparison(
        PROBE_COLUMN, "between", low=1, high=delete_below
    )
    survivor_rows = np.nonzero(keys > delete_below)[0]
    picks = rng.choice(survivor_rows, size=inserts, replace=False)
    names = list(unclustered.schema.names)
    insert_records = [
        {name: int(unclustered.columns[name][i]) for name in names}
        for i in picks
    ]
    update_key = int(probe_keys[len(probe_keys) // 2])
    update_predicate = Comparison(PROBE_COLUMN, "==", update_key)
    update_assignments = {"lo_tax": 3}

    results = ClusteringResults(
        scale_factor=scale_factor, pages=pages,
        probes=probes, error_queries=error_queries,
    )

    # The broadcast twin: packed backend, same queries, broadcast DML.
    twin = _build_engine(
        _copy_relation(unclustered), "packed", "twin-broadcast",
        aggregation_width,
    )

    for backend in BACKENDS:
        run = EngineRun(backend=backend)
        engine = _build_engine(
            _copy_relation(unclustered), backend, f"adaptive-{backend}",
            aggregation_width,
        )
        stored = engine.stored
        lockstep = backend == "packed"
        start = time.perf_counter()

        # Phase 1: unclustered baseline — every probe scans everything.
        run.pre = _measure_phase(engine, probe_queries)
        if lockstep:
            _measure_phase(twin, probe_queries)

        # Phase 2: churn, pruned vs the broadcast twin in lockstep.
        executor = PimExecutor(engine.config)
        twin_executor = PimExecutor(twin.config)
        dml.execute_delete(
            stored, delete_predicate, executor, vectorized=True, pruned=True,
        )
        if lockstep:
            dml.execute_delete(
                twin.stored, delete_predicate, twin_executor,
                vectorized=True, pruned=False,
            )
            results.dml_lockstep &= _lockstep_equal(stored, twin.stored)
        dml.execute_insert(stored, insert_records, executor, encoded=True)
        if lockstep:
            dml.execute_insert(
                twin.stored, insert_records, twin_executor, encoded=True
            )
        execute_update(
            stored, update_predicate, update_assignments, executor,
            pruned=True,
        )
        if lockstep:
            execute_update(
                twin.stored, update_predicate, update_assignments,
                twin_executor, pruned=False,
            )
            results.dml_lockstep &= _lockstep_equal(stored, twin.stored)

        # Phase 3: feed the error accumulator until it rebuilds.
        for query in error_feed:
            engine.execute(query)
        if lockstep:
            for query in error_feed:
                twin.execute(query)
        snapshot = stored.statistics.adaptive_snapshot()
        run.rebuilds = snapshot.rebuilds
        run.observations = snapshot.observations
        run.hot_column = snapshot.hot_column

        # Phase 4: threshold compaction re-clusters by the hottest column.
        compaction = dml.execute_compaction(stored, executor)
        run.compaction_performed = compaction.performed
        run.clustered_by = compaction.clustered_by
        run.fragmentation_before = compaction.fragmentation_before
        if lockstep:
            dml.execute_compaction(twin.stored, twin_executor)
            results.dml_lockstep &= _lockstep_equal(stored, twin.stored)

        # Phase 5: the payoff replay over the clustered relation.
        run.post = _measure_phase(engine, probe_queries)
        if lockstep:
            twin_post = _measure_phase(twin, probe_queries)
            results.dml_lockstep &= twin_post.rows == run.post.rows

        run.wall_s = time.perf_counter() - start
        results.runs.append(run)
    return results


def render(results: ClusteringResults) -> str:
    """Human-readable closed-loop report."""
    lines = [
        f"Self-tuning storage: SF {results.scale_factor}, "
        f"{results.pages} pages tiled+shuffled (unclustered), "
        f"{results.probes} point probes on {PROBE_COLUMN}, "
        f"{results.error_queries} error feeders, "
        f"{DELETE_FRACTION:.0%} range DELETE",
        f"{'backend':<8} {'pre entries':>12} {'post entries':>13} "
        f"{'pre xbars':>10} {'post xbars':>11} {'rebuilds':>9} {'wall [s]':>9}",
    ]
    for run in results.runs:
        lines.append(
            f"{run.backend:<8} {run.pre.cold_entries:>12} "
            f"{run.post.cold_entries:>13} {run.pre.crossbars_scanned:>10} "
            f"{run.post.crossbars_scanned:>11} {run.rebuilds:>9} "
            f"{run.wall_s:>9.3f}"
        )
    for run in results.runs:
        lines.append(
            f"{run.backend}: cold-walk entries cut "
            f"{results.entry_reduction(run.backend):.1f}x, crossbars scanned "
            f"cut {results.scan_reduction(run.backend):.1f}x (gates >= "
            f"{MIN_ENTRY_REDUCTION:.0f}x / {MIN_SCAN_REDUCTION:.0f}x); "
            f"hot column {run.hot_column}, clustered by {run.clustered_by} "
            f"at {run.fragmentation_before:.0%} fragmentation"
        )
    lines.append(
        f"bit-exact rows across backends: "
        f"{'yes' if results.backends_agree else 'NO'}; "
        f"modelled stats identical: "
        f"{'yes' if results.stats_identical else 'NO'}; "
        f"pruned DML lockstep with broadcast twin: "
        f"{'yes' if results.dml_lockstep else 'NO'}; "
        f"loop closed: {'yes' if results.loop_closed else 'NO'}"
    )
    return "\n".join(lines)


def artifact(results: ClusteringResults) -> dict:
    """The ``BENCH_cluster.json`` trajectory record."""
    return {
        "benchmark": "clustering",
        "scale_factor": results.scale_factor,
        "pages": results.pages,
        "probes": results.probes,
        "error_queries": results.error_queries,
        "probe_column": PROBE_COLUMN,
        "backends_agree": results.backends_agree,
        "stats_identical": results.stats_identical,
        "dml_lockstep": results.dml_lockstep,
        "loop_closed": results.loop_closed,
        "min_entry_reduction": (
            None if results.min_entry_reduction() == float("inf")
            else results.min_entry_reduction()
        ),
        "min_scan_reduction": (
            None if results.min_scan_reduction() == float("inf")
            else results.min_scan_reduction()
        ),
        "runs": [
            {
                "backend": run.backend,
                "wall_s": run.wall_s,
                "pre_cold_entries": run.pre.cold_entries,
                "post_cold_entries": run.post.cold_entries,
                "pre_crossbars_scanned": run.pre.crossbars_scanned,
                "post_crossbars_scanned": run.post.crossbars_scanned,
                "rebuilds": run.rebuilds,
                "observations": run.observations,
                "hot_column": run.hot_column,
                "compaction_performed": run.compaction_performed,
                "clustered_by": run.clustered_by,
                "fragmentation_before": run.fragmentation_before,
            }
            for run in results.runs
        ],
    }


def write_artifact(results: ClusteringResults, path) -> None:
    """Persist the schema-versioned trajectory artifact as JSON."""
    emit.write_artifact(
        path,
        "clustering",
        artifact(results),
        gates={
            "loop_closed": results.loop_closed,
            "dml_lockstep": results.dml_lockstep,
            "backends_agree": results.backends_agree,
            "stats_identical": results.stats_identical,
        },
    )
