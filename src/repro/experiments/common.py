"""Shared set-up and execution for the evaluation experiments.

The evaluation runs the 13 SSB queries on five configurations:

* ``one_xb``  — this paper's system, pre-joined record in one crossbar row;
* ``two_xb``  — this paper's system with the record vertically partitioned
  across two crossbars (the worst-case placement of Section V-A);
* ``pimdb``   — the PIMDB baseline (no aggregation circuit);
* ``mnt_join`` — the columnar baseline on the pre-joined relation;
* ``mnt_reg``  — the columnar baseline on the original star schema.

:func:`build_setup` generates the dataset, loads the PIM configurations and
constructs the engines; :func:`run_all_queries` executes every query on every
configuration once and returns flat :class:`QueryRecord` rows, which all the
figure/table modules consume.  Because the five engines share the same
functional data, the runner also cross-checks that every configuration
returns identical result rows — a query execution that produced a wrong
answer never makes it into a figure.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from collections.abc import Sequence

from repro.baselines import build_pimdb_engine
from repro.columnar import ColumnarEngine
from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.core.executor import PimQueryEngine, QueryExecution
from repro.db.query import Query
from repro.db.relation import Relation
from repro.db.storage import StoredRelation
from repro.pim.module import PimModule
from repro.ssb import ALL_QUERIES, QUERY_ORDER, build_ssb_prejoined, generate
from repro.ssb.datagen import LINEORDERS_PER_SF, SSBDataset
from repro.ssb.prejoined import DERIVED_ATTRIBUTES, max_aggregated_width, two_xb_partitions

#: The scale factor of the paper's evaluation; costs are extrapolated to it.
PAPER_SCALE_FACTOR = 10.0

#: All configurations of the evaluation, in reporting order.
PIM_CONFIGS = ("one_xb", "two_xb", "pimdb")
COLUMNAR_CONFIGS = ("mnt_join", "mnt_reg")
ALL_CONFIGS = PIM_CONFIGS + COLUMNAR_CONFIGS

#: Environment variable overriding the generated scale factor.
SCALE_ENV_VAR = "REPRO_SSB_SF"


@dataclass
class QueryRecord:
    """One (configuration, query) measurement used by the figures."""

    config: str
    query: str
    time_s: float
    energy_j: float
    peak_power_w: float
    max_writes_per_row: int
    selectivity: float
    total_subgroups: int
    subgroups_in_sample: int
    pim_subgroups: int
    result_rows: int


@dataclass
class ExperimentSetup:
    """Dataset, pre-joined relation and the five configured engines."""

    dataset: SSBDataset
    prejoined: Relation
    config: SystemConfig
    timing_scale: float
    pim_engines: dict[str, PimQueryEngine]
    columnar: ColumnarEngine
    configs: tuple[str, ...] = ALL_CONFIGS
    _records: list[QueryRecord] | None = None

    @property
    def modelled_pages(self) -> float:
        """The relation size (in 2 MB pages) the timing model corresponds to."""
        engine = next(iter(self.pim_engines.values()))
        return engine.stored.pages * self.timing_scale

    def execute(self, config: str, query: Query):
        """Execute one query on one configuration."""
        if config in self.pim_engines:
            return self.pim_engines[config].execute(query)
        if config == "mnt_join":
            return self.columnar.execute_prejoined(query, self.prejoined, label=config)
        if config == "mnt_reg":
            return self.columnar.execute_star(query, self.dataset.database, label=config)
        raise KeyError(f"unknown configuration {config!r}")


def default_scale_factor() -> float:
    """Scale factor used by the benchmarks (overridable via REPRO_SSB_SF)."""
    value = os.environ.get(SCALE_ENV_VAR)
    return float(value) if value else 0.01


def build_setup(
    scale_factor: float | None = None,
    skew: float = 0.5,
    seed: int = 42,
    configs: Sequence[str] = ALL_CONFIGS,
    config: SystemConfig | None = None,
    target_scale_factor: float = PAPER_SCALE_FACTOR,
) -> ExperimentSetup:
    """Generate the SSB instance and construct the requested configurations."""
    if scale_factor is None:
        scale_factor = default_scale_factor()
    system = config if config is not None else DEFAULT_CONFIG
    dataset = generate(scale_factor=scale_factor, skew=skew, seed=seed)
    prejoined = build_ssb_prejoined(dataset.database)
    aggregation_width = max_aggregated_width(prejoined)
    timing_scale = (LINEORDERS_PER_SF * target_scale_factor) / len(prejoined)

    pim_engines: dict[str, PimQueryEngine] = {}
    if "one_xb" in configs:
        module = PimModule(system)
        stored = StoredRelation(
            prejoined, module, label="one_xb",
            aggregation_width=aggregation_width,
            reserve_bulk_aggregation=False,
        )
        pim_engines["one_xb"] = PimQueryEngine(
            stored, config=system, label="one_xb", timing_scale=timing_scale
        )
    if "two_xb" in configs:
        module = PimModule(system)
        stored = StoredRelation(
            prejoined, module, label="two_xb",
            partitions=two_xb_partitions(prejoined),
            aggregation_width=aggregation_width,
            reserve_bulk_aggregation=False,
        )
        pim_engines["two_xb"] = PimQueryEngine(
            stored, config=system, label="two_xb", timing_scale=timing_scale
        )
    if "pimdb" in configs:
        engine, _ = build_pimdb_engine(
            prejoined, config=system,
            aggregation_width=aggregation_width,
            timing_scale=timing_scale,
        )
        pim_engines["pimdb"] = engine

    columnar = ColumnarEngine(
        system, derived=DERIVED_ATTRIBUTES, workload_scale=timing_scale
    )
    return ExperimentSetup(
        dataset=dataset,
        prejoined=prejoined,
        config=system,
        timing_scale=timing_scale,
        pim_engines=pim_engines,
        columnar=columnar,
        configs=tuple(c for c in ALL_CONFIGS if c in configs),
    )


def run_all_queries(
    setup: ExperimentSetup,
    queries: Sequence[str] = QUERY_ORDER,
    verify: bool = True,
) -> list[QueryRecord]:
    """Run every query on every configuration of the set-up (cached).

    With ``verify=True`` (the default) the runner asserts that every
    configuration returned identical result rows for every query.
    """
    if setup._records is not None:
        return setup._records
    records: list[QueryRecord] = []
    for name in queries:
        query = ALL_QUERIES[name]
        reference_rows = None
        for config in setup.configs:
            execution = setup.execute(config, query)
            rows = execution.rows
            if verify:
                if reference_rows is None:
                    reference_rows = rows
                elif _comparable(rows) != _comparable(reference_rows):
                    raise AssertionError(
                        f"configuration {config} disagrees on {name}"
                    )
            records.append(_record_from(config, name, execution))
    setup._records = records
    return records


def _comparable(rows) -> dict:
    return {key: dict(value) for key, value in rows.items()}


def _record_from(config: str, name: str, execution) -> QueryRecord:
    if isinstance(execution, QueryExecution):
        return QueryRecord(
            config=config,
            query=name,
            time_s=execution.time_s,
            energy_j=execution.energy_j,
            peak_power_w=execution.peak_chip_power_w,
            max_writes_per_row=execution.max_writes_per_row,
            selectivity=execution.selectivity,
            total_subgroups=execution.total_subgroups,
            subgroups_in_sample=execution.subgroups_in_sample,
            pim_subgroups=execution.pim_subgroups,
            result_rows=len(execution.rows),
        )
    return QueryRecord(
        config=config,
        query=name,
        time_s=execution.time_s,
        energy_j=0.0,
        peak_power_w=0.0,
        max_writes_per_row=0,
        selectivity=0.0,
        total_subgroups=0,
        subgroups_in_sample=0,
        pim_subgroups=0,
        result_rows=len(execution.rows),
    )


# ---------------------------------------------------------------------------
# Small reporting helpers shared by the figure modules
# ---------------------------------------------------------------------------

def records_by(records: Sequence[QueryRecord]) -> dict[tuple[str, str], QueryRecord]:
    """Index records by (config, query)."""
    return {(r.config, r.query): r for r in records}


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (ignoring non-positive values)."""
    filtered = [v for v in values if v > 0]
    if not filtered:
        return 0.0
    return math.exp(sum(math.log(v) for v in filtered) / len(filtered))


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a simple aligned text table."""
    columns = [str(h) for h in headers]
    text_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(columns[i]), *(len(r[i]) for r in text_rows)) if text_rows else len(columns[i])
        for i in range(len(columns))
    ]
    lines = [
        "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns)),
        "  ".join("-" * widths[i] for i in range(len(columns))),
    ]
    for row in text_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.001:
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)
