"""Ablations beyond the paper's figures.

Three design choices DESIGN.md calls out are quantified here:

* **Aggregation-circuit ablation** — latency/energy of the same query with
  and without the circuit on identical data and plans (the per-query view
  behind the paper's one-xb vs PIMDB comparison).
* **Sampling-budget ablation** — how the number of sampled pages changes the
  subgroup estimate and the chosen ``k``.
* **Pre-join storage accounting** — the Section III argument that the
  pre-joined relation occupies no more pages than the fact relation.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.prejoin import storage_overhead
from repro.experiments.common import ExperimentSetup, format_table
from repro.ssb import ALL_QUERIES


@dataclass
class AblationRow:
    """One ablation measurement."""

    name: str
    variant: str
    time_s: float
    energy_j: float
    pim_subgroups: int


def aggregation_circuit_ablation(
    setup: ExperimentSetup, queries: Sequence[str] = ("Q1.1", "Q2.3", "Q4.1")
) -> list[AblationRow]:
    """Same queries with (one_xb) and without (pimdb) the aggregation circuit."""
    rows: list[AblationRow] = []
    for name in queries:
        query = ALL_QUERIES[name]
        for config in ("one_xb", "pimdb"):
            if config not in setup.pim_engines:
                continue
            execution = setup.pim_engines[config].execute(query)
            rows.append(AblationRow(
                name=name,
                variant="with circuit" if config == "one_xb" else "bulk-bitwise only",
                time_s=execution.time_s,
                energy_j=execution.energy_j,
                pim_subgroups=execution.pim_subgroups,
            ))
    return rows


def sampling_ablation(
    setup: ExperimentSetup,
    query_name: str = "Q3.2",
    sample_pages: Sequence[int] = (1, 2, 4),
) -> list[AblationRow]:
    """Effect of the sampling budget on the GROUP-BY plan."""
    if "one_xb" not in setup.pim_engines:
        return []
    base = setup.pim_engines["one_xb"]
    query = ALL_QUERIES[query_name]
    rows: list[AblationRow] = []
    original = base.sample_pages
    try:
        for pages in sample_pages:
            base.sample_pages = pages
            execution = base.execute(query)
            rows.append(AblationRow(
                name=query_name,
                variant=f"{pages} sampled page(s)",
                time_s=execution.time_s,
                energy_j=execution.energy_j,
                pim_subgroups=execution.pim_subgroups,
            ))
    finally:
        base.sample_pages = original
    return rows


def prejoin_storage_report(setup: ExperimentSetup):
    """Storage accounting of the pre-joined relation (Section III)."""
    return storage_overhead(
        setup.dataset.database,
        setup.prejoined,
        crossbar_row_bits=setup.config.pim.crossbar.columns,
        records_per_page=setup.config.pim.records_per_page,
    )


def render(setup: ExperimentSetup) -> str:
    """All ablations as printable text."""
    lines = ["Aggregation-circuit ablation"]
    rows = [
        [r.name, r.variant, f"{r.time_s * 1e3:.2f}", f"{r.energy_j * 1e3:.2f}", r.pim_subgroups]
        for r in aggregation_circuit_ablation(setup)
    ]
    lines.append(format_table(["Query", "Variant", "Time [ms]", "Energy [mJ]", "k"], rows))

    lines.append("")
    lines.append("Sampling-budget ablation")
    rows = [
        [r.name, r.variant, f"{r.time_s * 1e3:.2f}", r.pim_subgroups]
        for r in sampling_ablation(setup)
    ]
    lines.append(format_table(["Query", "Variant", "Time [ms]", "k"], rows))

    report = prejoin_storage_report(setup)
    lines.append("")
    lines.append("Pre-join storage accounting (Section III)")
    lines.append(format_table(["Metric", "Value"], [
        ["fact records", report.fact_records],
        ["fact record bits", report.fact_record_bits],
        ["pre-joined record bits", report.prejoined_record_bits],
        ["fits in one crossbar row", report.fits_in_single_row],
        ["fact pages", report.fact_pages],
        ["pre-joined pages (one-xb)", report.prejoined_pages_one_xb],
        ["extra pages vs fact only", report.extra_pages_one_xb],
        ["row utilisation", f"{report.row_utilisation * 100:.1f}%"],
    ]))
    return "\n".join(lines)
