"""Throughput of the batched query service on the SSB workload.

The 13 SSB queries are replayed as a mixed workload at several batch sizes
through :class:`~repro.service.service.QueryService` (vectorized host paths
plus the shared compiled-program cache) and compared against the per-query
baseline: one :meth:`~repro.core.executor.PimQueryEngine.execute` call per
query with gate-level NOR simulation and no program reuse — the seed's only
execution path.

Every batch is replayed twice, mirroring a steady-state service: the first
replay warms the program cache, the second is measured.  The results of the
measured replay are checked bit-exact against the sequential baseline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections.abc import Sequence

from repro.config import SystemConfig
from repro.db.query import Query
from repro.experiments.common import build_setup, format_table
from repro.service import QueryService
from repro.ssb import ALL_QUERIES, QUERY_ORDER


@dataclass
class ThroughputPoint:
    """One measured (batch size, replay) service data point."""

    batch_size: int
    wall_time_s: float
    wall_qps: float
    modelled_p50_s: float
    modelled_p95_s: float
    cache_hits: int
    cache_misses: int


@dataclass
class ThroughputResults:
    """Everything the benchmark reports."""

    scale_factor: float
    sequential_batch: int
    sequential_wall_s: float
    sequential_qps: float
    cold_points: list[ThroughputPoint]
    warm_points: list[ThroughputPoint]
    speedup: float
    bit_exact: bool

    def warm_point(self, batch_size: int) -> ThroughputPoint:
        for point in self.warm_points:
            if point.batch_size == batch_size:
                return point
        raise KeyError(f"no measured batch of size {batch_size}")

    def measured_point(self) -> ThroughputPoint:
        """The warm point the speedup is quoted for.

        The warm replay matching the sequential baseline's batch size, or the
        largest measured batch when the sweep does not include it.
        """
        try:
            return self.warm_point(self.sequential_batch)
        except KeyError:
            return self.warm_points[-1]


def _workload(batch_size: int) -> list[Query]:
    """A mixed workload cycling through the 13 SSB queries."""
    return [ALL_QUERIES[QUERY_ORDER[i % len(QUERY_ORDER)]] for i in range(batch_size)]


def run_throughput(
    scale_factor: float | None = None,
    batch_sizes: Sequence[int] = (1, 4, 13, 26),
    config: SystemConfig | None = None,
    baseline_batch: int = 13,
) -> ThroughputResults:
    """Measure service throughput against the per-query baseline."""
    setup = build_setup(scale_factor=scale_factor, configs=("one_xb",), config=config)
    baseline_engine = setup.pim_engines["one_xb"]
    stored = baseline_engine.stored

    # Per-query baseline: gate-level simulation, fresh compilation per query.
    baseline_queries = _workload(baseline_batch)
    start = time.perf_counter()
    baseline_executions = [baseline_engine.execute(q) for q in baseline_queries]
    sequential_wall = time.perf_counter() - start
    # Sequential reference rows for every distinct query of the workload
    # (computed untimed for queries the baseline batch did not reach).
    reference_rows = {
        q.name: e.rows for q, e in zip(baseline_queries, baseline_executions)
    }
    for name in QUERY_ORDER:
        if name not in reference_rows:
            reference_rows[name] = baseline_engine.execute(ALL_QUERIES[name]).rows

    service = QueryService()
    service.register(
        "ssb", stored,
        config=setup.config,
        label="service",
        timing_scale=baseline_engine.timing_scale,
    )

    cold_points: list[ThroughputPoint] = []
    warm_points: list[ThroughputPoint] = []
    bit_exact = True
    for batch_size in batch_sizes:
        queries = _workload(batch_size)
        service.cache.clear()  # each batch size starts from a genuinely cold cache
        for points in (cold_points, warm_points):
            result = service.execute_batch(queries)
            stats = result.stats
            points.append(ThroughputPoint(
                batch_size=batch_size,
                wall_time_s=stats.wall_time_s,
                wall_qps=stats.wall_qps,
                modelled_p50_s=stats.modelled_p50_s,
                modelled_p95_s=stats.modelled_p95_s,
                cache_hits=stats.cache.hits,
                cache_misses=stats.cache.misses,
            ))
            for execution in result:
                if execution.rows != reference_rows[execution.query.name]:
                    bit_exact = False

    results = ThroughputResults(
        scale_factor=setup.dataset.scale_factor,
        sequential_batch=baseline_batch,
        sequential_wall_s=sequential_wall,
        sequential_qps=baseline_batch / sequential_wall if sequential_wall else 0.0,
        cold_points=cold_points,
        warm_points=warm_points,
        speedup=0.0,
        bit_exact=bit_exact,
    )
    # Per-query wall-clock ratio, so a sweep that skips the baseline batch
    # size still compares like with like.
    measured = results.measured_point()
    sequential_per_query = sequential_wall / baseline_batch
    measured_per_query = (
        measured.wall_time_s / measured.batch_size if measured.batch_size else 0.0
    )
    results.speedup = (
        sequential_per_query / measured_per_query if measured_per_query else 0.0
    )
    return results


def render(results: ThroughputResults) -> str:
    """Render the benchmark's report table."""
    headers = (
        "batch", "replay", "wall s", "q/s",
        "p50 ms", "p95 ms", "hits", "misses",
    )
    rows: list[tuple] = []
    for label, points in (("cold", results.cold_points), ("warm", results.warm_points)):
        for point in points:
            rows.append((
                point.batch_size, label,
                point.wall_time_s, point.wall_qps,
                point.modelled_p50_s * 1e3, point.modelled_p95_s * 1e3,
                point.cache_hits, point.cache_misses,
            ))
    lines = [
        f"SSB mixed workload, scale factor {results.scale_factor}",
        f"sequential per-query baseline: {results.sequential_batch} queries in "
        f"{results.sequential_wall_s:.3f}s ({results.sequential_qps:.2f} q/s)",
        f"service per-query speedup at batch "
        f"{results.measured_point().batch_size} (warm cache): "
        f"{results.speedup:.1f}x, bit-exact: {results.bit_exact}",
        "",
        format_table(headers, rows),
    ]
    return "\n".join(lines)
