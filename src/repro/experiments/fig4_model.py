"""Fig. 4 — empirical latency modelling of host-gb and pim-gb.

The paper obtains the Eq. (1)/(2) lookup tables by measuring synthetic
workloads on its gem5 system and fitting the results.  This experiment
reproduces the methodology against the simulator: it stores a synthetic
relation, sweeps

* the relation size ``M`` (2 MB pages, emulated through the timing scale),
* the ratio of selected records ``r`` and the reads per record ``s`` for
  host-gb (Figs. 4a/4b), and
* the number of aggregation reads ``n`` for a single-subgroup pim-gb
  (Fig. 4c),

measures the latency of each point with the same read-path / executor models
the query engine uses, fits :class:`~repro.core.latency_model.HostGbLatencyModel`
and :class:`~repro.core.latency_model.PimGbLatencyModel` to the measurements,
and reports the fit against the analytic model the engine uses by default.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.core.latency_model import (
    GroupByCostModel,
    HostGbLatencyModel,
    HostGbMeasurement,
    PimGbLatencyModel,
    PimGbMeasurement,
    build_analytic_cost_model,
)
from repro.db.compiler import compile_group_predicate, compile_predicate
from repro.db.query import Comparison, LT
from repro.db.relation import Relation
from repro.db.schema import Schema, int_attribute
from repro.db.storage import StoredRelation
from repro.experiments.common import format_table
from repro.host.aggregator import host_group_aggregate
from repro.host.readpath import HostReadModel
from repro.pim.controller import PimExecutor
from repro.pim.module import PimModule
from repro.pim.stats import PimStats
from repro.db.query import Aggregate


#: Attribute widths chosen so the aggregated attribute needs n = 1..4 reads.
_AGGREGATE_WIDTHS = {1: 14, 2: 28, 3: 44, 4: 50}


def _synthetic_relation(records: int, seed: int = 11) -> Relation:
    """A synthetic relation for the latency sweeps.

    ``key`` drives the selectivity filter, ``group_id`` is the subgroup
    identifier, ``read0..read3`` are 16-bit attributes the host reads (their
    number sets ``s``), and ``agg_n*`` are the aggregated attributes of
    widths requiring one to four 16-bit reads.
    """
    rng = np.random.default_rng(seed)
    attributes = [
        int_attribute("key", 20),
        int_attribute("group_id", 8),
        int_attribute("read0", 16),
        int_attribute("read1", 16),
        int_attribute("read2", 16),
        int_attribute("read3", 16),
    ]
    columns = {
        "key": rng.integers(0, 1 << 20, records).astype(np.uint64),
        "group_id": rng.integers(0, 100, records).astype(np.uint64),
        "read0": rng.integers(0, 1 << 16, records).astype(np.uint64),
        "read1": rng.integers(0, 1 << 16, records).astype(np.uint64),
        "read2": rng.integers(0, 1 << 16, records).astype(np.uint64),
        "read3": rng.integers(0, 1 << 16, records).astype(np.uint64),
    }
    for n, width in _AGGREGATE_WIDTHS.items():
        name = f"agg_n{n}"
        attributes.append(int_attribute(name, width))
        columns[name] = rng.integers(0, 1 << 30, records).astype(np.uint64) & np.uint64(
            (1 << width) - 1
        )
    return Relation(Schema("fig4_synthetic", attributes), columns)


@dataclass
class Fig4Result:
    """Measurements and fitted models of the Fig. 4 experiment."""

    host_measurements: list[HostGbMeasurement]
    pim_measurements: list[PimGbMeasurement]
    fitted: GroupByCostModel
    analytic: GroupByCostModel


def run_fig4(
    config: SystemConfig = None,
    records: int = 60_000,
    page_counts: Sequence[int] = (64, 128, 256, 512),
    read_ratios: Sequence[float] = (0.01, 0.05, 0.2, 0.4, 0.8),
    reads_per_record: Sequence[int] = (2, 4, 6, 8),
    aggregation_reads: Sequence[int] = (1, 2, 3, 4),
    use_aggregation_circuit: bool = True,
) -> Fig4Result:
    """Measure the host-gb and pim-gb latency sweeps and fit Eq. (1)/(2)."""
    system = config if config is not None else DEFAULT_CONFIG
    relation = _synthetic_relation(records)
    module = PimModule(system)
    stored = StoredRelation(
        relation, module, label="fig4",
        aggregation_width=max(_AGGREGATE_WIDTHS.values()),
        reserve_bulk_aggregation=not use_aggregation_circuit,
    )
    layout = stored.layouts[0]
    allocation = stored.allocations[0]
    actual_pages = stored.pages

    host_points: list[HostGbMeasurement] = []
    pim_points: list[PimGbMeasurement] = []

    for pages in page_counts:
        scale = pages / actual_pages
        for ratio in read_ratios:
            threshold = int(ratio * (1 << 20))
            stats = PimStats()
            executor = PimExecutor(system, stats)
            read_model = HostReadModel(system, stats, traffic_scale=scale)
            program = compile_predicate(
                Comparison("key", LT, threshold), relation.schema, layout
            )
            executor.run_program(allocation.bank, program, pages=pages, phase="filter")

            for s in reads_per_record:
                point_stats = PimStats()
                point_reader = HostReadModel(system, point_stats, traffic_scale=scale)
                mask = point_reader.read_filter_bitvector(stored, 0)
                indices = np.nonzero(mask)[0]
                # Read enough distinct attributes to require ~s 16-bit words
                # per record (the synthetic schema provides nine candidates).
                candidates = ["group_id", "read0", "read1", "read2", "read3",
                              "agg_n1", "agg_n2", "agg_n3", "agg_n4"]
                attributes = candidates[:min(s, len(candidates))]
                values = point_reader.read_records(stored, 0, indices, attributes)
                host_group_aggregate(
                    {"group_id": values.get("group_id", indices)},
                    {},
                    [Aggregate("count")],
                    system.host,
                    stats=point_stats,
                    threads=system.host.query_threads,
                    workload_scale=scale,
                )
                host_points.append(HostGbMeasurement(
                    pages=pages,
                    reads_per_record=s,
                    read_ratio=float(mask.mean()),
                    time_s=point_stats.total_time_s,
                ))

        for n in aggregation_reads:
            stats = PimStats()
            executor = PimExecutor(system, stats)
            read_model = HostReadModel(system, stats, traffic_scale=scale)
            group_program = compile_group_predicate(
                {"group_id": 3}, layout, filter_column=layout.valid_column
            )
            executor.run_program(
                allocation.bank, group_program, pages=pages, phase="pim-gb-filter"
            )
            name = f"agg_n{n}"
            if use_aggregation_circuit:
                executor.aggregate_with_circuit(
                    allocation.bank,
                    layout.field_offset(name), layout.field_width(name),
                    layout.group_column, layout.result_offset,
                    pages=pages, result_width=layout.accumulator_width,
                )
            else:
                from repro.pim.arithmetic import BulkAggregationPlan

                plan = BulkAggregationPlan(
                    rows=allocation.rows_per_crossbar,
                    field_offset=layout.field_offset(name),
                    field_width=layout.field_width(name),
                    mask_column=layout.group_column,
                    acc_offset=layout.accumulator_offset,
                    operand_offset=layout.operand_offset,
                    scratch_columns=layout.scratch_columns,
                )
                executor.aggregate_bulk_bitwise(allocation.bank, plan, pages=pages)
            read_model.read_aggregation_results(stored, 0)
            pim_points.append(PimGbMeasurement(
                pages=pages, aggregation_reads=n, time_s=stats.total_time_s
            ))

    fitted = GroupByCostModel(
        host=HostGbLatencyModel.fit(host_points),
        pim=PimGbLatencyModel.fit(pim_points),
    )
    analytic = build_analytic_cost_model(
        system, use_aggregation_circuit=use_aggregation_circuit
    )
    return Fig4Result(
        host_measurements=host_points,
        pim_measurements=pim_points,
        fitted=fitted,
        analytic=analytic,
    )


def render(result: Fig4Result) -> str:
    """Fig. 4 as printable text: measured points, fitted and analytic models."""
    lines = ["Fig. 4a/4b - host-gb (measured vs fitted M*(a(s)*sqrt(r)+b(s)))"]
    rows = []
    for point in result.host_measurements:
        fitted = result.fitted.host.predict(
            point.pages, point.reads_per_record, point.read_ratio
        )
        analytic = result.analytic.host.predict(
            point.pages, point.reads_per_record, point.read_ratio
        )
        rows.append([
            point.pages, point.reads_per_record, f"{point.read_ratio:.3f}",
            f"{point.time_s * 1e3:.3f}", f"{fitted * 1e3:.3f}", f"{analytic * 1e3:.3f}",
        ])
    lines.append(format_table(
        ["M", "s", "r", "measured [ms]", "fit [ms]", "analytic [ms]"], rows
    ))
    lines.append("")
    lines.append("Fig. 4c - pim-gb single subgroup (measured vs fitted M*slope(n)+T0(n))")
    rows = []
    for point in result.pim_measurements:
        fitted = result.fitted.pim.predict(point.pages, point.aggregation_reads)
        analytic = result.analytic.pim.predict(point.pages, point.aggregation_reads)
        rows.append([
            point.pages, point.aggregation_reads,
            f"{point.time_s * 1e3:.3f}", f"{fitted * 1e3:.3f}", f"{analytic * 1e3:.3f}",
        ])
    lines.append(format_table(
        ["M", "n", "measured [ms]", "fit [ms]", "analytic [ms]"], rows
    ))
    lines.append("")
    host_a = {k: round(v, 9) for k, v in result.fitted.host.a.items()}
    host_b = {k: round(v, 9) for k, v in result.fitted.host.b.items()}
    lines.append(f"fitted host-gb slope tables: a(s)={host_a} b(s)={host_b}")
    pim_slope = {k: round(v, 9) for k, v in result.fitted.pim.slope_table.items()}
    pim_t0 = {k: round(v, 9) for k, v in result.fitted.pim.intercept_table.items()}
    lines.append(f"fitted pim-gb tables: slope(n)={pim_slope} T0(n)={pim_t0}")
    return "\n".join(lines)
