"""Engine wall-clock: batched group-by kernels vs the per-subgroup baseline.

The batched execution strategy (PR 8) evaluates every PIM-resident subgroup
of a GROUP-BY through one multi-output fused kernel per vertical partition —
shared CSE across the per-subgroup programs, one whole-array NumPy
expression per backend — and then charges the modelled statistics by
replaying the per-subgroup sequence through the same accounting entry
points the reference loop uses.  This experiment proves both halves of that
trade at engine granularity:

* **equivalence** — every SSB query must produce bit-exact result rows and
  bit-identical :meth:`~repro.pim.stats.PimStats.totals` under the batched
  strategy, the per-subgroup fused strategy (the PR 7 default) *and* the
  per-operation dispatch strategy (the PR 3 reference);
* **speed** — on the GROUP-BY queries (the Amdahl residual once filters
  were fused), the warm batched replay must beat the per-subgroup fused
  baseline by a measured factor (gated >=2x, target >=3x).

A further section times the thread-pool scatter of a warm sharded replay
(``max_workers=4`` vs ``1`` over the same four shards).  The speedup is
always *measured* and recorded; the >1x gate only applies when
``os.cpu_count() > 1`` — a single core serialises the pool by construction,
so on such hosts the record keeps the trajectory honest without failing CI.

The engines run under a degenerate all-PIM GROUP-BY cost model (host
absurdly expensive, PIM free).  At benchmark scale the fitted model routes
most subgroups to the host sampling path, which would leave the kernels
nothing to batch; forcing the paper's PIM-resident regime puts every
subgroup on the measured path, identically for every strategy.

``render`` produces the human-readable table and ``artifact`` the
``BENCH_engine.json`` trajectory record consumed by CI.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.core.executor import PimQueryEngine, QueryExecution
from repro.core.latency_model import (
    GroupByCostModel,
    HostGbLatencyModel,
    PimGbLatencyModel,
)
from repro.db.storage import StoredRelation
from repro.experiments import emit
from repro.experiments.common import default_scale_factor
from repro.pim.module import PimModule
from repro.service import ProgramCache
from repro.sharding import ShardedQueryEngine, ShardedStoredRelation
from repro.ssb import ALL_QUERIES, QUERY_ORDER, build_ssb_prejoined, generate
from repro.ssb.prejoined import max_aggregated_width

#: Execution strategies compared, in reporting order: the PR 3 per-operation
#: reference, the PR 7 per-subgroup fused baseline, and the batched default.
STRATEGIES = ("dispatch", "fused", "batched")

#: The timed baseline the speedup is reported against.
BASELINE = "fused"


def _all_pim_cost_model() -> GroupByCostModel:
    """Degenerate model routing every subgroup to PIM (see module docstring)."""
    return GroupByCostModel(
        HostGbLatencyModel({2: 1.0}, {2: 1.0}),      # host absurdly expensive
        PimGbLatencyModel({2: 0.0}, {2: 0.0}),       # PIM free
    )


@dataclass
class QueryComparison:
    """One SSB query replayed warm under every execution strategy."""

    query: str
    group_by: bool
    pim_subgroups: int
    times_s: dict[str, float]
    rows_match: bool
    totals_match: bool

    @property
    def baseline_s(self) -> float:
        return self.times_s[BASELINE]

    @property
    def batched_s(self) -> float:
        return self.times_s["batched"]

    @property
    def speedup(self) -> float:
        return self.baseline_s / self.batched_s if self.batched_s > 0 else float("inf")


@dataclass
class ScatterComparison:
    """A warm sharded replay, sequential scatter vs thread pool.

    Both engines shard the same relation four ways and run the batched
    strategy; only ``max_workers`` differs.  ``cpu_count`` is recorded
    because the wall-clock comparison is only gateable on a multi-core
    host — the measurement itself is never skipped.
    """

    shards: int
    cpu_count: int
    serial_s: float
    parallel_s: float
    rows_match: bool

    @property
    def speedup(self) -> float:
        return self.serial_s / self.parallel_s if self.parallel_s > 0 else float("inf")

    @property
    def gateable(self) -> bool:
        """Whether a wall-clock pool speedup is physically observable."""
        return self.cpu_count > 1


@dataclass
class EngineWallclockResults:
    """Everything ``bench_engine_wallclock`` reports and gates on."""

    scale_factor: float
    records: int
    repeats: int
    queries: list[QueryComparison] = field(default_factory=list)
    scatter: ScatterComparison | None = None

    @property
    def group_by_queries(self) -> list[QueryComparison]:
        """The GROUP-BY subset the batched-kernel gate applies to."""
        return [q for q in self.queries if q.group_by]

    def _subset_speedup(self, subset: list[QueryComparison]) -> float:
        batched = sum(q.batched_s for q in subset)
        baseline = sum(q.baseline_s for q in subset)
        return baseline / batched if batched > 0 else float("inf")

    @property
    def group_by_speedup(self) -> float:
        return self._subset_speedup(self.group_by_queries)

    @property
    def overall_speedup(self) -> float:
        return self._subset_speedup(self.queries)

    @property
    def bit_exact(self) -> bool:
        return all(q.rows_match for q in self.queries) and (
            self.scatter is None or self.scatter.rows_match
        )

    @property
    def totals_identical(self) -> bool:
        return all(q.totals_match for q in self.queries)


def _engine(prejoined, config: SystemConfig) -> PimQueryEngine:
    stored = StoredRelation(
        prejoined, PimModule(config), label="wallclock",
        aggregation_width=max_aggregated_width(prejoined),
        reserve_bulk_aggregation=False,
    )
    return PimQueryEngine(
        stored, config=config, label="wallclock",
        cost_model=_all_pim_cost_model(), vectorized=True,
    )


def _replay(engines: dict[str, PimQueryEngine], repeats: int):
    """Warm every engine, then time per-query replays per strategy.

    Returns per-strategy ``{query: (seconds, execution)}`` with the seconds
    averaged over ``repeats`` and the execution taken from the last round
    (warm-state executions are identical round to round).
    """
    for engine in engines.values():            # warm programs, plans, kernels
        for name in QUERY_ORDER:
            engine.execute(ALL_QUERIES[name])
    timed: dict[str, dict[str, tuple]] = {name: {} for name in engines}
    for strategy, engine in engines.items():
        for name in QUERY_ORDER:
            query = ALL_QUERIES[name]
            execution: QueryExecution | None = None
            start = time.perf_counter()
            for _ in range(repeats):
                execution = engine.execute(query)
            timed[strategy][name] = (
                (time.perf_counter() - start) / repeats, execution
            )
    return timed


def _timed_scatter(
    prejoined, config: SystemConfig, shards: int = 4, repeats: int = 3
) -> ScatterComparison:
    """Time a warm sharded SSB replay, sequential vs pooled scatter."""
    engines: dict[int, ShardedQueryEngine] = {}
    for workers in (1, shards):
        sharded = ShardedStoredRelation(
            prejoined, PimModule(config), shards=shards,
            label=f"scatter{workers}",
            aggregation_width=max_aggregated_width(prejoined),
            reserve_bulk_aggregation=False,
        )
        engines[workers] = ShardedQueryEngine(
            sharded, config=config, label=f"scatter{workers}",
            cost_model=_all_pim_cost_model(), compiler=ProgramCache(256),
            vectorized=True, max_workers=workers,
        )
    times: dict[int, float] = {}
    rows: dict[int, list] = {}
    for workers, engine in engines.items():
        for name in QUERY_ORDER:               # warm the shards and the pool
            engine.execute(ALL_QUERIES[name])
        start = time.perf_counter()
        for _ in range(repeats):
            rows[workers] = [
                engine.execute(ALL_QUERIES[name]).rows for name in QUERY_ORDER
            ]
        times[workers] = (time.perf_counter() - start) / repeats
        engine.close()
    return ScatterComparison(
        shards=shards,
        cpu_count=os.cpu_count() or 1,
        serial_s=times[1],
        parallel_s=times[shards],
        rows_match=rows[1] == rows[shards],
    )


def run_engine_wallclock(
    scale_factor: float | None = None,
    skew: float = 0.5,
    seed: int = 42,
    repeats: int = 3,
    with_scatter: bool = True,
    scatter_shards: int = 4,
) -> EngineWallclockResults:
    """Replay the 13 SSB queries warm under every execution strategy."""
    if scale_factor is None:
        scale_factor = default_scale_factor()
    dataset = generate(scale_factor=scale_factor, skew=skew, seed=seed)
    prejoined = build_ssb_prejoined(dataset.database)
    configs = {
        strategy: DEFAULT_CONFIG.with_execution(strategy)
        for strategy in STRATEGIES
    }
    engines = {
        strategy: _engine(prejoined, configs[strategy])
        for strategy in STRATEGIES
    }
    timed = _replay(engines, repeats)

    results = EngineWallclockResults(
        scale_factor=scale_factor, records=len(prejoined), repeats=repeats
    )
    for name in QUERY_ORDER:
        executions = {s: timed[s][name][1] for s in STRATEGIES}
        batched = executions["batched"]
        results.queries.append(QueryComparison(
            query=name,
            group_by=bool(ALL_QUERIES[name].group_by),
            pim_subgroups=batched.pim_subgroups,
            times_s={s: timed[s][name][0] for s in STRATEGIES},
            rows_match=all(
                executions[s].rows == batched.rows for s in STRATEGIES
            ),
            totals_match=all(
                executions[s].stats.totals() == batched.stats.totals()
                for s in STRATEGIES
            ),
        ))
    if with_scatter:
        results.scatter = _timed_scatter(
            prejoined, configs["batched"], shards=scatter_shards
        )
    return results


def render(results: EngineWallclockResults) -> str:
    """Paper-style comparison table of the execution strategies."""
    lines = [
        f"Engine wall-clock, SSB SF={results.scale_factor} "
        f"({results.records} pre-joined records), warm replay x{results.repeats}, "
        f"all-PIM GROUP-BY plans",
        f"{'query':<8} {'k':>3} {'dispatch [s]':>13} {'fused [s]':>10} "
        f"{'batched [s]':>12} {'speedup':>8}  rows  totals",
    ]
    for q in results.queries:
        lines.append(
            f"{q.query:<8} {q.pim_subgroups:>3} "
            f"{q.times_s['dispatch']:>13.4f} {q.times_s['fused']:>10.4f} "
            f"{q.batched_s:>12.4f} {q.speedup:>7.1f}x  "
            f"{'ok' if q.rows_match else 'DIFF':<4}  "
            f"{'ok' if q.totals_match else 'DIFF'}"
        )
    gb = results.group_by_queries
    lines.append(
        f"group-by subset ({len(gb)} queries): fused "
        f"{sum(q.baseline_s for q in gb):.4f}s / batched "
        f"{sum(q.batched_s for q in gb):.4f}s = {results.group_by_speedup:.1f}x"
    )
    lines.append(
        f"all 13 queries: fused {sum(q.baseline_s for q in results.queries):.4f}s"
        f" / batched {sum(q.batched_s for q in results.queries):.4f}s"
        f" = {results.overall_speedup:.1f}x"
    )
    if results.scatter is not None:
        sc = results.scatter
        note = "" if sc.gateable else (
            f" [single CPU ({sc.cpu_count} core): pool serialised, "
            f"gate skipped]"
        )
        lines.append(
            f"sharded replay ({sc.shards} shards, batched, warm): "
            f"serial {sc.serial_s:.4f}s / pooled {sc.parallel_s:.4f}s "
            f"= {sc.speedup:.2f}x, rows {'ok' if sc.rows_match else 'DIFF'}"
            f"{note}"
        )
    return "\n".join(lines)


def artifact(results: EngineWallclockResults) -> dict:
    """The ``BENCH_engine.json`` trajectory record."""
    record = {
        "benchmark": "engine_wallclock",
        "scale_factor": results.scale_factor,
        "records": results.records,
        "repeats": results.repeats,
        "cpu_count": os.cpu_count() or 1,
        "baseline": BASELINE,
        "queries": [
            {
                "query": q.query,
                "group_by": q.group_by,
                "pim_subgroups": q.pim_subgroups,
                "dispatch_s": q.times_s["dispatch"],
                "fused_s": q.times_s["fused"],
                "batched_s": q.batched_s,
                "speedup": q.speedup,
                "rows_match": q.rows_match,
                "totals_match": q.totals_match,
            }
            for q in results.queries
        ],
        "group_by_speedup": results.group_by_speedup,
        "overall_speedup": results.overall_speedup,
        "bit_exact": results.bit_exact,
        "totals_identical": results.totals_identical,
    }
    if results.scatter is not None:
        record["sharded_scatter"] = {
            "shards": results.scatter.shards,
            "cpu_count": results.scatter.cpu_count,
            "serial_s": results.scatter.serial_s,
            "parallel_s": results.scatter.parallel_s,
            "speedup": results.scatter.speedup,
            "rows_match": results.scatter.rows_match,
            "gateable": results.scatter.gateable,
        }
    return record


def write_artifact(results: EngineWallclockResults, path) -> None:
    """Persist the schema-versioned trajectory artifact as JSON."""
    emit.write_artifact(
        path,
        "engine_wallclock",
        artifact(results),
        gates={
            "bit_exact": results.bit_exact,
            "totals_identical": results.totals_identical,
        },
    )
