"""Sharded scatter-gather scaling over the 13 SSB queries.

Runs the full SSB workload on an unsharded engine and on sharded engines at
K = 1, 2, 4 shards, verifying three things:

* **bit-exactness** — every sharded execution returns exactly the rows of
  the unsharded engine and of the NumPy reference evaluator;
* **latency scaling** — the modelled end-to-end latency (max-over-shards
  plus the gather term, never the sum) improves monotonically from K=1 to
  K=4;
* **cost accounting** — total modelled energy and worst per-row wear stay
  within accounting of the unsharded run (sharding redistributes the work,
  it does not create or hide any).

The generated instance is sized so the crossbar pages divide evenly among
every shard count (LCM-of-K pages): with contiguous balanced shards, each
shard at K then owns exactly ``pages / K`` pages and the issue-gap term of
the broadcast latency scales as cleanly as the paper's timing model allows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.core.executor import PimQueryEngine
from repro.db.query import evaluate_predicate, reference_group_aggregate
from repro.db.storage import StoredRelation
from repro.experiments.common import PAPER_SCALE_FACTOR
from repro.pim.module import PimModule
from repro.service.cache import ProgramCache
from repro.sharding import ShardedQueryEngine, ShardedStoredRelation
from repro.ssb import ALL_QUERIES, QUERY_ORDER, build_ssb_prejoined, generate
from repro.ssb.datagen import LINEORDERS_PER_SF
from repro.ssb.prejoined import max_aggregated_width

DEFAULT_SHARD_COUNTS: tuple[int, ...] = (1, 2, 4)

#: The scalar (no GROUP-BY) queries used for the strict energy-accounting
#: check: with no per-shard planner freedom, the dynamic (non-controller)
#: energy of a sharded run must equal the unsharded run's almost exactly.
SCALAR_QUERIES: tuple[str, ...] = ("Q1.1", "Q1.2", "Q1.3")


def _dynamic_energy(stats) -> float:
    """Energy excluding the static per-page controller term.

    The controller term scales with how long the broadcast keeps each
    page's controller active, so it legitimately *shrinks* under sharding
    (each shard's issue window is shorter); every other component is work
    actually performed and must be conserved.
    """
    return sum(
        joules
        for component, joules in stats.energy_by_component.items()
        if component != "controller"
    )


def _lcm(values: Sequence[int]) -> int:
    result = 1
    for value in values:
        result = result * value // math.gcd(result, value)
    return result


def aligned_record_count(
    shard_counts: Sequence[int], config: SystemConfig | None = None
) -> int:
    """Smallest record count whose pages divide evenly at every shard count."""
    system = config if config is not None else DEFAULT_CONFIG
    return system.pim.records_per_page * _lcm(shard_counts)


@dataclass
class ScalingPoint:
    """The whole SSB workload executed at one shard count."""

    shards: int
    #: Sum over the 13 queries of the modelled sharded latency
    #: (max-over-shards + merge term per query).
    total_time_s: float
    total_energy_j: float
    max_writes_per_row: int
    mean_parallel_speedup: float
    total_merge_time_s: float
    per_query_time_s: dict[str, float] = field(default_factory=dict)
    cache_misses: int = 0
    cache_hits: int = 0
    #: Dynamic (non-controller) energy over :data:`SCALAR_QUERIES`.
    scalar_dynamic_energy_j: float = 0.0


@dataclass
class ScalingResults:
    """Sharded scaling measurements plus the unsharded baseline."""

    records: int
    pages: int
    timing_scale: float
    shard_counts: tuple[int, ...]
    unsharded_time_s: float
    unsharded_energy_j: float
    unsharded_max_writes_per_row: int
    unsharded_scalar_dynamic_energy_j: float
    points: list[ScalingPoint]
    bit_exact: bool

    def point(self, shards: int) -> ScalingPoint:
        for point in self.points:
            if point.shards == shards:
                return point
        raise KeyError(f"no scaling point for {shards} shards")

    def speedup(self, shards: int) -> float:
        """Unsharded latency over the sharded latency at ``shards``."""
        return self.unsharded_time_s / self.point(shards).total_time_s

    @property
    def latency_monotonic(self) -> bool:
        """Whether modelled latency strictly improves with every added shard."""
        times = [self.point(k).total_time_s for k in sorted(self.shard_counts)]
        return all(a > b for a, b in zip(times, times[1:]))

    def energy_ratio(self, shards: int) -> float:
        return self.point(shards).total_energy_j / self.unsharded_energy_j

    def wear_ratio(self, shards: int) -> float:
        return (
            self.point(shards).max_writes_per_row
            / self.unsharded_max_writes_per_row
        )

    def scalar_dynamic_energy_ratio(self, shards: int) -> float:
        """Sharded over unsharded dynamic energy on the scalar queries.

        Scalar queries leave the planner no freedom, so this ratio is the
        strict conservation check: scattering work over shards must neither
        create nor lose any modelled dynamic energy (expected ~1.0).
        """
        return (
            self.point(shards).scalar_dynamic_energy_j
            / self.unsharded_scalar_dynamic_energy_j
        )


def run_scaling(
    shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
    scale_factor: float | None = None,
    queries: Sequence[str] = QUERY_ORDER,
    config: SystemConfig | None = None,
    target_scale_factor: float = PAPER_SCALE_FACTOR,
    seed: int = 42,
    skew: float = 0.5,
) -> ScalingResults:
    """Execute the SSB workload unsharded and at every requested shard count.

    ``scale_factor`` sizes the generated instance; by default (and as a
    floor) the instance is sized to :func:`aligned_record_count` so every
    shard count divides the pages evenly.  Larger explicit scale factors are
    trimmed down to the nearest aligned record count.
    """
    system = config if config is not None else DEFAULT_CONFIG
    shard_counts = tuple(sorted(set(int(k) for k in shard_counts)))
    aligned = aligned_record_count(shard_counts, system)
    if scale_factor is None:
        records = aligned
    else:
        generated = int(round(LINEORDERS_PER_SF * scale_factor))
        records = max(aligned, generated // aligned * aligned)
    dataset = generate(
        scale_factor=records / LINEORDERS_PER_SF, skew=skew, seed=seed
    )
    prejoined = build_ssb_prejoined(dataset.database).head(records)
    aggregation_width = max_aggregated_width(prejoined)
    timing_scale = (LINEORDERS_PER_SF * target_scale_factor) / records

    module = PimModule(system)
    unsharded_stored = StoredRelation(
        prejoined, module, label="unsharded",
        aggregation_width=aggregation_width, reserve_bulk_aggregation=False,
    )
    unsharded = PimQueryEngine(
        unsharded_stored, label="unsharded",
        timing_scale=timing_scale, compiler=ProgramCache(512), vectorized=True,
    )

    bit_exact = True
    baseline_rows: dict[str, dict] = {}
    unsharded_time = unsharded_energy = unsharded_scalar_dyn = 0.0
    unsharded_wear = 0
    for name in queries:
        query = ALL_QUERIES[name]
        execution = unsharded.execute(query)
        reference = reference_group_aggregate(
            prejoined, evaluate_predicate(query.predicate, prejoined),
            query.group_by, query.aggregates,
        )
        bit_exact &= execution.rows == reference
        baseline_rows[name] = execution.rows
        unsharded_time += execution.time_s
        unsharded_energy += execution.energy_j
        unsharded_wear = max(unsharded_wear, execution.max_writes_per_row)
        if name in SCALAR_QUERIES:
            unsharded_scalar_dyn += _dynamic_energy(execution.stats)

    points: list[ScalingPoint] = []
    for shards in shard_counts:
        cache = ProgramCache(512)
        shard_module = PimModule(system)
        sharded = ShardedStoredRelation(
            prejoined, shard_module, shards=shards, label=f"sharded{shards}",
            aggregation_width=aggregation_width, reserve_bulk_aggregation=False,
        )
        engine = ShardedQueryEngine(
            sharded, label=f"sharded{shards}",
            timing_scale=timing_scale, compiler=cache, vectorized=True,
        )
        total_time = total_energy = total_merge = scalar_dyn = 0.0
        wear = 0
        speedups: list[float] = []
        per_query: dict[str, float] = {}
        for name in queries:
            execution = engine.execute(ALL_QUERIES[name])
            bit_exact &= execution.rows == baseline_rows[name]
            per_query[name] = execution.time_s
            total_time += execution.time_s
            total_energy += execution.energy_j
            total_merge += execution.merge_time_s
            wear = max(wear, execution.max_writes_per_row)
            speedups.append(execution.parallel_speedup)
            if name in SCALAR_QUERIES:
                scalar_dyn += _dynamic_energy(execution.stats)
        points.append(ScalingPoint(
            shards=shards,
            total_time_s=total_time,
            total_energy_j=total_energy,
            max_writes_per_row=wear,
            mean_parallel_speedup=sum(speedups) / len(speedups),
            total_merge_time_s=total_merge,
            per_query_time_s=per_query,
            cache_misses=cache.stats.misses,
            cache_hits=cache.stats.hits,
            scalar_dynamic_energy_j=scalar_dyn,
        ))

    return ScalingResults(
        records=records,
        pages=unsharded_stored.pages,
        timing_scale=timing_scale,
        shard_counts=shard_counts,
        unsharded_time_s=unsharded_time,
        unsharded_energy_j=unsharded_energy,
        unsharded_max_writes_per_row=unsharded_wear,
        unsharded_scalar_dynamic_energy_j=unsharded_scalar_dyn,
        points=points,
        bit_exact=bit_exact,
    )


def render(results: ScalingResults) -> str:
    """Render the scaling sweep as a paper-style text table."""
    lines = [
        f"sharded scatter-gather scaling — {results.records} records, "
        f"{results.pages} pages, timing x{results.timing_scale:.0f} "
        f"(modelled SF={PAPER_SCALE_FACTOR:g})",
        "",
        f"{'config':>10} {'time_ms':>10} {'speedup':>8} {'energy_mJ':>10} "
        f"{'wear':>6} {'par_spd':>8} {'merge_us':>9} {'compile':>12}",
        f"{'unsharded':>10} {results.unsharded_time_s * 1e3:>10.3f} "
        f"{'1.00x':>8} {results.unsharded_energy_j * 1e3:>10.3f} "
        f"{results.unsharded_max_writes_per_row:>6} {'-':>8} {'-':>9} {'-':>12}",
    ]
    for point in results.points:
        lines.append(
            f"{f'K={point.shards}':>10} {point.total_time_s * 1e3:>10.3f} "
            f"{f'{results.speedup(point.shards):.2f}x':>8} "
            f"{point.total_energy_j * 1e3:>10.3f} "
            f"{point.max_writes_per_row:>6} "
            f"{point.mean_parallel_speedup:>7.2f}x "
            f"{point.total_merge_time_s * 1e6:>9.3f} "
            f"{f'{point.cache_misses}m/{point.cache_hits}h':>12}"
        )
    lines.append("")
    lines.append(
        "latency monotonic K=1..4: "
        + ("yes" if results.latency_monotonic else "NO")
    )
    largest = max(results.shard_counts)
    lines.append(
        f"K={largest}: energy x{results.energy_ratio(largest):.3f}, "
        f"wear x{results.wear_ratio(largest):.3f} vs unsharded "
        f"(scalar-query dynamic energy "
        f"x{results.scalar_dynamic_energy_ratio(largest):.4f})"
    )
    lines.append("bit-exact vs unsharded + reference: "
                 + ("yes" if results.bit_exact else "NO"))
    return "\n".join(lines)
