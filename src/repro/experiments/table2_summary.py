"""Table II — per-query selectivity and GROUP-BY subgroup statistics."""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.common import QueryRecord, format_table, records_by
from repro.ssb import QUERY_ORDER

#: Table II as printed in the paper, for side-by-side reporting:
#: (selectivity, total subgroups, subgroups in sample, one-xb k, two-xb k, pimdb k).
PAPER_TABLE2 = {
    "Q1.1": (2.3e-2, 1, None, 1, 1, 1),
    "Q1.2": (6.6e-4, 1, None, 1, 1, 1),
    "Q1.3": (8.4e-5, 1, None, 1, 1, 1),
    "Q2.1": (1.2e-2, 280, 121, 4, 0, 0),
    "Q2.2": (1.6e-3, 56, 33, 56, 0, 0),
    "Q2.3": (2.0e-4, 7, 4, 7, 0, 7),
    "Q3.1": (3.4e-2, 150, 150, 150, 0, 0),
    "Q3.2": (1.3e-3, 600, 27, 27, 0, 0),
    "Q3.3": (4.7e-5, 24, 2, 24, 0, 0),
    "Q3.4": (6.6e-7, 4, 0, 4, 0, 4),
    "Q4.1": (2.0e-2, 35, 35, 35, 0, 35),
    "Q4.2": (2.3e-3, 50, 29, 50, 0, 0),
    "Q4.3": (9.1e-5, 800, 3, 3, 0, 0),
}


def table2_rows(records: Sequence[QueryRecord]) -> list[list[object]]:
    """Measured Table II rows.

    Columns: query, selectivity, total subgroups, subgroups in sample, and
    the number of PIM-aggregated subgroups for one-xb / two-xb / pimdb.
    """
    indexed = records_by(records)
    rows: list[list[object]] = []
    for query in QUERY_ORDER:
        one = indexed.get(("one_xb", query))
        two = indexed.get(("two_xb", query))
        pimdb = indexed.get(("pimdb", query))
        base = one or two or pimdb
        if base is None:
            continue
        rows.append([
            query,
            base.selectivity,
            base.total_subgroups,
            base.subgroups_in_sample,
            one.pim_subgroups if one else None,
            two.pim_subgroups if two else None,
            pimdb.pim_subgroups if pimdb else None,
        ])
    return rows


def render(records: Sequence[QueryRecord]) -> str:
    """Table II as printable text, with the paper's values alongside."""
    rows = []
    for row in table2_rows(records):
        query = row[0]
        paper = PAPER_TABLE2.get(query)
        rows.append([
            query,
            f"{row[1]:.1e}",
            row[2],
            row[3],
            row[4],
            row[5],
            row[6],
            f"{paper[0]:.1e}" if paper else "-",
            paper[1] if paper else "-",
            paper[3] if paper else "-",
            paper[4] if paper else "-",
            paper[5] if paper else "-",
        ])
    headers = [
        "Query", "Select.", "Total", "Sampled",
        "k one_xb", "k two_xb", "k pimdb",
        "paper sel.", "paper total", "paper k1", "paper k2", "paper kp",
    ]
    return format_table(headers, rows)
