"""Sustained INSERT/DELETE/UPDATE/query churn through the service layer.

The DML subsystem's acceptance story: a relation serving queries while its
contents churn — batches of inserts landing in reused tombstone slots and
the spare capacity tail, broadcast deletes tombstoning rows in place,
Algorithm 1 updates, and threshold-triggered compaction — must stay
**bit-exact** with the functional ground truth on every backend, round after
round, with modelled :class:`~repro.pim.stats.PimStats` charged for every
DML phase.

One deterministic workload (generated once from the seed) is replayed on
both simulation backends through a sharded :class:`~repro.service.QueryService`;
every round checks the three probe queries against a reference aggregation
over the live ground truth, and the two backends' rows are compared against
each other.  ``render`` produces the human-readable report and ``artifact``
the ``BENCH_dml.json`` trajectory record consumed by CI.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.db.dml import DEFAULT_COMPACTION_THRESHOLD
from repro.db.query import (
    Aggregate,
    Comparison,
    Query,
    evaluate_predicate,
    reference_group_aggregate,
)
from repro.db.relation import Relation
from repro.db.schema import Schema, dict_attribute, int_attribute
from repro.experiments import emit
from repro.service import QueryService
from repro.sharding import execute_sharded_update

BACKENDS = ("bool", "packed")
CITIES = [f"CITY{i}" for i in range(8)]

PROBE_QUERIES = (
    Query(
        "scalar",
        Comparison("value", "<", 3000),
        (Aggregate("sum", "value"), Aggregate("count"), Aggregate("min", "value")),
    ),
    Query(
        "by-city",
        Comparison("value", ">=", 500),
        (Aggregate("sum", "value"), Aggregate("count")),
        group_by=("city",),
    ),
    Query(
        "by-flag",
        Comparison("city", "in", values=tuple(CITIES[:4])),
        (Aggregate("max", "value"), Aggregate("count")),
        group_by=("flag",),
    ),
)

#: The relation is stored two-xb (vertically partitioned) so the churn also
#: exercises the cross-partition tombstone transfer of DELETE.
PARTITIONS = (("key", "value", "flag"), ("city",))

#: DML phases the workload must charge modelled stats to.
DML_PHASES = (
    "insert-write",
    "delete-filter",
    "delete-clear",
    "delete-transfer",
    "compact-read",
    "compact-write",
)


def churn_schema() -> Schema:
    return Schema("churn", [
        int_attribute("key", 16, source="fact"),
        int_attribute("value", 12, source="fact"),
        int_attribute("flag", 2, source="fact"),
        dict_attribute("city", CITIES, source="dim"),
    ])


def churn_relation(records: int, seed: int) -> Relation:
    rng = np.random.default_rng(seed)
    return Relation(churn_schema(), {
        "key": rng.integers(0, 1 << 16, records).astype(np.uint64),
        "value": rng.integers(0, 1 << 12, records).astype(np.uint64),
        "flag": rng.integers(0, 4, records).astype(np.uint64),
        "city": rng.integers(0, len(CITIES), records).astype(np.uint64),
    })


def _generate_workload(rounds: int, inserts_per_round: int, seed: int) -> list[dict]:
    """One concrete op list per round, generated once and replayed verbatim."""
    rng = np.random.default_rng(seed + 1)
    workload = []
    for _ in range(rounds):
        records = [
            {
                "key": int(rng.integers(0, 1 << 16)),
                "value": int(rng.integers(0, 1 << 12)),
                "flag": int(rng.integers(0, 4)),
                "city": CITIES[int(rng.integers(0, len(CITIES)))],
            }
            for _ in range(inserts_per_round)
        ]
        low = int(rng.integers(0, 1 << 12))
        span = int(rng.integers(100, 600))
        workload.append({
            "insert": records,
            # A value-range delete tombstoning a slice of the key space.
            "delete": Comparison("value", "between", low=low, high=low + span),
            "update": (
                Comparison("flag", "==", int(rng.integers(0, 4))),
                {"value": int(rng.integers(0, 1 << 12))},
            ),
        })
    return workload


@dataclass
class BackendChurnRun:
    """One backend's trip through the churn workload."""

    backend: str
    wall_s: float
    rows_match_reference: bool
    inserted: int
    deleted: int
    compactions: int
    slots_reclaimed: int
    final_live: int
    final_tombstones: int
    final_slots: int
    #: Modelled seconds charged per DML phase, summed over every shard and
    #: every call of the run — a physical total of work performed, not the
    #: max-over-shards latency (which ``DmlOutcome.stats`` models per call).
    phase_time_s: dict[str, float] = field(default_factory=dict)
    #: Modelled energy charged by DML calls, summed over the run.
    dml_energy_j: float = 0.0
    #: Per-round probe-query rows (encoded), for cross-backend comparison.
    round_rows: list[list[dict]] = field(default_factory=list)


@dataclass
class DmlChurnResults:
    """Everything ``bench_dml_churn`` reports and gates on."""

    records: int
    rounds: int
    shards: int
    inserts_per_round: int
    threshold: float
    runs: list[BackendChurnRun] = field(default_factory=list)

    @property
    def backends_agree(self) -> bool:
        """Both backends returned identical probe rows every round."""
        if len(self.runs) < 2:
            return True
        reference = self.runs[0].round_rows
        return all(run.round_rows == reference for run in self.runs[1:])

    @property
    def bit_exact(self) -> bool:
        """Every round of every backend matched the functional ground truth."""
        return all(run.rows_match_reference for run in self.runs) and (
            self.backends_agree
        )

    @property
    def all_phases_charged(self) -> bool:
        """Every DML phase charged nonzero modelled time on every backend."""
        return all(
            run.phase_time_s.get(phase, 0.0) > 0.0
            for run in self.runs
            for phase in DML_PHASES
        )

    @property
    def stats_identical(self) -> bool:
        """Modelled DML stats are bit-identical across the backends.

        Stats are charged from program/layout metadata, never from the bank
        representation, so a packed-vs-boolean difference here means a
        backend regression even when the result rows still agree.
        """
        if len(self.runs) < 2:
            return True
        reference = self.runs[0]
        return all(
            run.phase_time_s == reference.phase_time_s
            and run.dml_energy_j == reference.dml_energy_j
            for run in self.runs[1:]
        )


def _run_backend(
    backend: str,
    records: int,
    seed: int,
    shards: int,
    workload: list[dict],
    threshold: float,
) -> BackendChurnRun:
    relation = churn_relation(records, seed)
    service = QueryService(vectorized=True)
    engine = service.register_sharded(
        "churn", relation, shards=shards, backend=backend,
        partitions=PARTITIONS,
    )
    sharded = engine.sharded
    phase_time: dict[str, float] = {phase: 0.0 for phase in DML_PHASES}
    dml_energy = 0.0
    rows_ok = True
    round_rows: list[list[dict]] = []

    def charge(outcome) -> None:
        nonlocal dml_energy
        # The per-shard breakdown keeps the per-phase detail; summing it
        # gives the physical work total across shards (the merged
        # outcome.stats collapses a broadcast into one max-over-shards
        # scatter phase instead).
        for shard_stats in outcome.shard_stats:
            for phase, seconds in shard_stats.time_by_phase.items():
                if phase in phase_time:
                    phase_time[phase] += seconds
        dml_energy += outcome.stats.total_energy_j

    start = time.perf_counter()
    for ops in workload:
        charge(service.insert(ops["insert"]))
        charge(service.delete(ops["delete"]))
        predicate, assignments = ops["update"]
        execute_sharded_update(sharded, predicate, assignments)
        charge(service.compact(threshold=threshold))

        live = sharded.live_relation()
        this_round: list[dict] = []
        for query in PROBE_QUERIES:
            execution = service.execute(query)
            expected = reference_group_aggregate(
                live, evaluate_predicate(query.predicate, live),
                query.group_by, query.aggregates,
            )
            rows_ok = rows_ok and execution.rows == expected
            this_round.append(
                {str(key): value for key, value in sorted(execution.rows.items())}
            )
        round_rows.append(this_round)
    # A final forced compaction exercises compact-read/-write even on runs
    # whose churn never crossed the threshold organically.
    charge(service.compact(force=True))
    wall = time.perf_counter() - start

    stats = service.dml_stats("churn")
    return BackendChurnRun(
        backend=backend,
        wall_s=wall,
        rows_match_reference=rows_ok,
        inserted=stats.inserted,
        deleted=stats.deleted,
        compactions=stats.compactions,
        slots_reclaimed=stats.slots_reclaimed,
        final_live=stats.live_rows,
        final_tombstones=stats.tombstones,
        final_slots=stats.slots_in_use,
        phase_time_s=phase_time,
        dml_energy_j=dml_energy,
        round_rows=round_rows,
    )


def run_dml_churn(
    records: int = 2000,
    rounds: int = 6,
    inserts_per_round: int = 120,
    shards: int = 4,
    seed: int = 17,
    threshold: float = DEFAULT_COMPACTION_THRESHOLD,
) -> DmlChurnResults:
    """Replay one generated churn workload on every backend and verify."""
    workload = _generate_workload(rounds, inserts_per_round, seed)
    results = DmlChurnResults(
        records=records,
        rounds=rounds,
        shards=shards,
        inserts_per_round=inserts_per_round,
        threshold=threshold,
    )
    for backend in BACKENDS:
        results.runs.append(
            _run_backend(backend, records, seed, shards, workload, threshold)
        )
    return results


def render(results: DmlChurnResults) -> str:
    """Human-readable churn report."""
    lines = [
        f"DML churn: {results.records} records, {results.rounds} rounds x "
        f"{results.inserts_per_round} inserts, K={results.shards} shards, "
        f"compaction threshold {results.threshold:.0%}",
        f"{'backend':<8} {'wall [s]':>9} {'ins':>6} {'del':>6} {'compact':>8} "
        f"{'reclaimed':>10} {'live':>6} {'tomb':>5}  rows",
    ]
    for run in results.runs:
        lines.append(
            f"{run.backend:<8} {run.wall_s:>9.3f} {run.inserted:>6} "
            f"{run.deleted:>6} {run.compactions:>8} {run.slots_reclaimed:>10} "
            f"{run.final_live:>6} {run.final_tombstones:>5}  "
            f"{'ok' if run.rows_match_reference else 'DIFF'}"
        )
    for run in results.runs:
        phases = ", ".join(
            f"{phase} {seconds * 1e3:.3f} ms"
            for phase, seconds in run.phase_time_s.items()
        )
        lines.append(f"{run.backend} modelled DML phases: {phases}")
    lines.append(
        f"backends agree: {'yes' if results.backends_agree else 'NO'}; "
        f"bit-exact under churn: {'yes' if results.bit_exact else 'NO'}; "
        f"modelled DML stats identical: {'yes' if results.stats_identical else 'NO'}"
    )
    return "\n".join(lines)


def artifact(results: DmlChurnResults) -> dict:
    """The ``BENCH_dml.json`` trajectory record."""
    return {
        "benchmark": "dml_churn",
        "records": results.records,
        "rounds": results.rounds,
        "inserts_per_round": results.inserts_per_round,
        "shards": results.shards,
        "compaction_threshold": results.threshold,
        "bit_exact": results.bit_exact,
        "backends_agree": results.backends_agree,
        "all_phases_charged": results.all_phases_charged,
        "stats_identical": results.stats_identical,
        "runs": [
            {
                "backend": run.backend,
                "wall_s": run.wall_s,
                "rows_match_reference": run.rows_match_reference,
                "inserted": run.inserted,
                "deleted": run.deleted,
                "compactions": run.compactions,
                "slots_reclaimed": run.slots_reclaimed,
                "final_live": run.final_live,
                "final_tombstones": run.final_tombstones,
                "final_slots": run.final_slots,
                "phase_time_s": run.phase_time_s,
                "dml_energy_j": run.dml_energy_j,
            }
            for run in results.runs
        ],
    }


def write_artifact(results: DmlChurnResults, path) -> None:
    """Persist the schema-versioned trajectory artifact as JSON."""
    emit.write_artifact(
        path,
        "dml_churn",
        artifact(results),
        gates={
            "bit_exact": results.bit_exact,
            "backends_agree": results.backends_agree,
            "stats_identical": results.stats_identical,
            "all_phases_charged": results.all_phases_charged,
        },
    )
