"""Table I — architecture and system configuration."""

from __future__ import annotations


from repro.config import table1_rows
from repro.experiments.common import format_table


def table1() -> list[tuple[str, str, str]]:
    """The configuration rows of Table I."""
    return table1_rows()


def render() -> str:
    """Table I as printable text."""
    return format_table(["Section", "Parameter", "Value"], table1())
