"""Fig. 9 — required cell endurance for ten years of back-to-back execution."""

from __future__ import annotations

from collections.abc import Sequence

from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.experiments.common import (
    PIM_CONFIGS,
    QueryRecord,
    format_table,
    geomean,
    records_by,
)
from repro.memory.endurance import RRAM_ENDURANCE_WRITES, lifetime_years, required_endurance
from repro.ssb import QUERY_ORDER

#: Queries with few PIM aggregations on both one-xb and PIMDB, over which the
#: paper reports the 3.21x lifetime improvement.
LIFETIME_QUERIES = ("Q1.1", "Q1.2", "Q1.3", "Q3.4")


def fig9_rows(
    records: Sequence[QueryRecord],
    configs: Sequence[str] = PIM_CONFIGS,
    config: SystemConfig = None,
):
    """One row per query: required write endurance per PIM configuration."""
    system = config if config is not None else DEFAULT_CONFIG
    columns = system.pim.crossbar.columns
    indexed = records_by(records)
    rows = []
    for query in QUERY_ORDER:
        row: list[object] = [query]
        for cfg in configs:
            record = indexed.get((cfg, query))
            if record is None or record.time_s <= 0:
                row.append(float("nan"))
                continue
            row.append(
                required_endurance(
                    record.max_writes_per_row, columns, record.time_s
                )
            )
        rows.append(row)
    return rows


def lifetime_improvement(
    records: Sequence[QueryRecord], config: SystemConfig = None
) -> float:
    """Geo-mean lifetime improvement of one-xb over PIMDB (paper: 3.21x)."""
    system = config if config is not None else DEFAULT_CONFIG
    columns = system.pim.crossbar.columns
    indexed = records_by(records)
    ratios = []
    for query in LIFETIME_QUERIES:
        one = indexed.get(("one_xb", query))
        pimdb = indexed.get(("pimdb", query))
        if not one or not pimdb:
            continue
        one_life = lifetime_years(one.max_writes_per_row, columns, one.time_s)
        pimdb_life = lifetime_years(pimdb.max_writes_per_row, columns, pimdb.time_s)
        if pimdb_life > 0:
            ratios.append(one_life / pimdb_life)
    return geomean(ratios)


def render(
    records: Sequence[QueryRecord],
    configs: Sequence[str] = PIM_CONFIGS,
    config: SystemConfig = None,
) -> str:
    """Fig. 9 as printable text (write cycles needed for ten years)."""
    rows = []
    sufficient = True
    for row in fig9_rows(records, configs, config):
        formatted = [row[0]]
        for value in row[1:]:
            formatted.append(f"{value:.2e}")
            if value == value and value > RRAM_ENDURANCE_WRITES:
                sufficient = False
        rows.append(formatted)
    table = format_table(["Query"] + [f"{c} [writes]" for c in configs], rows)
    footer = (
        f"\nreported RRAM endurance (1e12 writes) sufficient for ten years on "
        f"every query: {sufficient}; geo-mean lifetime improvement of one_xb "
        f"over PIMDB on {', '.join(LIFETIME_QUERIES)}: "
        f"{lifetime_improvement(records, config):.2f}x (paper: 3.21x)"
    )
    return table + footer
