"""Fig. 6 — SSB execution latency for all five configurations."""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.common import (
    ALL_CONFIGS,
    QueryRecord,
    format_table,
    geomean,
    records_by,
)
from repro.ssb import QUERY_ORDER


def fig6_rows(records: Sequence[QueryRecord], configs: Sequence[str] = ALL_CONFIGS):
    """One row per query: execution latency (seconds) per configuration."""
    indexed = records_by(records)
    rows = []
    for query in QUERY_ORDER:
        row: list[object] = [query]
        for config in configs:
            record = indexed.get((config, query))
            row.append(record.time_s if record else float("nan"))
        rows.append(row)
    return rows


def speedups(records: Sequence[QueryRecord], baseline: str, target: str = "one_xb") -> dict[str, float]:
    """Per-query speedup of ``target`` over ``baseline`` plus the geo-mean."""
    indexed = records_by(records)
    ratios = {}
    for query in QUERY_ORDER:
        base = indexed.get((baseline, query))
        other = indexed.get((target, query))
        if base and other and other.time_s > 0:
            ratios[query] = base.time_s / other.time_s
    ratios["geomean"] = geomean(list(ratios.values()))
    return ratios


def render(setup_records: Sequence[QueryRecord], configs: Sequence[str] = ALL_CONFIGS) -> str:
    """Fig. 6 as printable text (run times in milliseconds)."""
    rows = []
    for row in fig6_rows(setup_records, configs):
        rows.append([row[0]] + [f"{value * 1e3:.2f}" for value in row[1:]])
    table = format_table(["Query"] + [f"{c} [ms]" for c in configs], rows)
    lines = [table, ""]
    available = {r.config for r in setup_records}
    for baseline, paper in (("mnt_reg", 7.46), ("mnt_join", 4.65), ("pimdb", 1.83)):
        if baseline in available and "one_xb" in available:
            ratio = speedups(setup_records, baseline)["geomean"]
            lines.append(
                f"geo-mean speedup of one_xb over {baseline}: {ratio:.2f}x "
                f"(paper: {paper:.2f}x)"
            )
    if {"one_xb", "two_xb"} <= available:
        slowdown = speedups(setup_records, "two_xb", target="one_xb")["geomean"]
        lines.append(
            f"geo-mean slowdown of two_xb vs one_xb: {slowdown:.2f}x (paper: 3.39x)"
        )
    return "\n".join(lines)
