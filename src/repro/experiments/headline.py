"""The paper's headline numbers, computed from the Fig. 6/7/9 data.

The abstract claims that, compared to PIMDB, the proposed system improves
execution time by 1.83x, energy by 4.31x and lifetime by 3.21x, and that it
is 7.46x / 4.65x faster than MonetDB without / with pre-joined relations.
This module computes the same aggregates from the reproduction's measurements
so they can be compared side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.config import SystemConfig
from repro.experiments.common import QueryRecord, format_table
from repro.experiments.fig6_latency import speedups
from repro.experiments.fig7_energy import pimdb_energy_ratio
from repro.experiments.fig9_endurance import lifetime_improvement


@dataclass(frozen=True)
class HeadlineMetric:
    """One headline comparison: measured value versus the paper's."""

    name: str
    measured: float
    paper: float

    @property
    def direction_matches(self) -> bool:
        """Whether the measured ratio points the same way as the paper's."""
        return (self.measured > 1.0) == (self.paper > 1.0)


def headline_metrics(
    records: Sequence[QueryRecord], config: SystemConfig = None
) -> list[HeadlineMetric]:
    """Compute every headline metric available from the records."""
    available = {r.config for r in records}
    metrics: list[HeadlineMetric] = []
    if {"one_xb", "mnt_reg"} <= available:
        metrics.append(HeadlineMetric(
            "speedup of one_xb over mnt_reg (geo-mean)",
            speedups(records, "mnt_reg")["geomean"], 7.46,
        ))
    if {"one_xb", "mnt_join"} <= available:
        metrics.append(HeadlineMetric(
            "speedup of one_xb over mnt_join (geo-mean)",
            speedups(records, "mnt_join")["geomean"], 4.65,
        ))
    if {"one_xb", "pimdb"} <= available:
        metrics.append(HeadlineMetric(
            "speedup of one_xb over pimdb (geo-mean)",
            speedups(records, "pimdb")["geomean"], 1.83,
        ))
        metrics.append(HeadlineMetric(
            "energy: pimdb / one_xb on PIM-aggregation queries",
            pimdb_energy_ratio(records), 4.31,
        ))
        metrics.append(HeadlineMetric(
            "lifetime: one_xb / pimdb on low-aggregation queries",
            lifetime_improvement(records, config), 3.21,
        ))
    if {"one_xb", "two_xb"} <= available:
        metrics.append(HeadlineMetric(
            "slowdown of two_xb vs one_xb (geo-mean)",
            speedups(records, "two_xb", target="one_xb")["geomean"], 3.39,
        ))
    if {"two_xb", "mnt_join"} <= available:
        metrics.append(HeadlineMetric(
            "speedup of two_xb over mnt_join (geo-mean)",
            speedups(records, "mnt_join", target="two_xb")["geomean"], 1.37,
        ))
    return metrics


def render(records: Sequence[QueryRecord], config: SystemConfig = None) -> str:
    """The headline comparison as printable text."""
    rows = [
        [m.name, f"{m.measured:.2f}x", f"{m.paper:.2f}x",
         "yes" if m.direction_matches else "NO"]
        for m in headline_metrics(records, config)
    ]
    return format_table(["Metric", "Measured", "Paper", "Same direction"], rows)
