"""Backend speed: packed vs boolean simulation of the 13 SSB queries.

The packed crossbar backend (:mod:`repro.pim.packed`) exists purely to make
the *functional simulation* faster — the modelled hardware is unchanged.
This experiment proves both halves of that claim at once:

* **equivalence** — every SSB query must produce bit-identical result rows
  and bit-identical :class:`~repro.pim.stats.PimStats` (latency, energy,
  power samples, wear) on both backends, gate level (every NOR primitive
  executed on the stored bits) and through the vectorized batched service;
* **speed** — the packed backend must beat the boolean reference by a
  configurable wall-clock factor (>=5x by default) on the gate-level query
  path, which is the simulation-bound regime every experiment, benchmark and
  the sharded service ultimately sit on.

Two further sections cover the fused kernel pipeline (PR 6):

* **fused replay** — the 13 compiled SSB filter programs replayed warm on
  the stored packed bank, per-operation dispatch vs the fused NOR-DAG
  kernel (gated >=5x, the headline fused-execution speedup);
* **kernel scatter** — the same warm programs replayed over four
  serving-scale shard banks, sequentially vs on a 4-wide thread pool
  (gated >1x on multi-core hosts: fused kernels run inside NumPy with the
  GIL released, so the pool must deliver real wall-clock overlap; on a
  single core the measurement is recorded but the gate is skipped).

The bool-vs-packed sections pin the per-operation *dispatch* strategy —
the regime the packed backend was introduced against — so their trajectory
stays comparable across versions; the fused sections quantify the strategy
speedup separately.

``render`` produces the human-readable table and ``artifact`` the
``BENCH_backend.json`` trajectory record consumed by CI.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.core.executor import PimQueryEngine, QueryExecution
from repro.core.stages import ProgramCompiler
from repro.db.storage import StoredRelation
from repro.experiments import emit
from repro.experiments.common import default_scale_factor
from repro.pim.module import PimModule
from repro.pim.packed import make_bank
from repro.pim.stats import PimStats
from repro.service import QueryService
from repro.ssb import ALL_QUERIES, QUERY_ORDER, build_ssb_prejoined, generate
from repro.ssb.prejoined import max_aggregated_width

BACKENDS = ("bool", "packed")


def stats_identical(a: PimStats, b: PimStats) -> bool:
    """Whether two executions charged bit-identical modelled statistics.

    :class:`PimStats` is a dataclass, so equality compares every field
    (per-phase times, per-component energies, counters, power samples,
    wear) — including fields added in the future.
    """
    return a == b


@dataclass
class QueryComparison:
    """One SSB query timed on both backends (gate-level execution)."""

    query: str
    bool_s: float
    packed_s: float
    rows_match: bool
    stats_match: bool

    @property
    def speedup(self) -> float:
        return self.bool_s / self.packed_s if self.packed_s > 0 else float("inf")


@dataclass
class ServiceComparison:
    """The warm vectorized service batch timed on both backends."""

    bool_s: float
    packed_s: float
    rows_match: bool

    @property
    def speedup(self) -> float:
        return self.bool_s / self.packed_s if self.packed_s > 0 else float("inf")


@dataclass
class FusedComparison:
    """The compiled SSB filter programs replayed dispatch vs fused.

    This is the simulation-kernel microbenchmark behind the fused execution
    strategy: the 13 WHERE-clause NOR programs are compiled once, their
    fused kernels warmed, and each program is then replayed on the stored
    packed bank — once stepping through the operation list (dispatch, the
    PR-3 reference) and once as the single fused NumPy expression.  Both
    paths leave bit-identical cells and wear, so the ratio is pure
    simulation speed.
    """

    programs: int
    cycles: int          # charged NOR/INIT cycles across all programs
    live_nors: int       # gates surviving CSE + folding in the NOR DAGs
    total_depth: int     # summed critical-path depths
    dispatch_s: float
    fused_s: float

    @property
    def speedup(self) -> float:
        return self.dispatch_s / self.fused_s if self.fused_s > 0 else float("inf")


@dataclass
class ScatterComparison:
    """The fused-kernel scatter over K shard banks, serial vs thread pool.

    Fused kernels spend their time inside NumPy ufuncs with the
    interpreter lock released, so a K-shard scatter can genuinely overlap
    shard simulations on a thread pool.  This replays the warm filter
    programs over K serving-scale packed banks, once sequentially and once
    on a K-wide pool.  ``cpu_count`` is recorded because the comparison is
    only meaningful on a multi-core host — a single core serialises the
    pool by construction, so the >1x gate is skipped there.
    """

    shards: int
    crossbars_per_shard: int
    cpu_count: int
    serial_s: float
    parallel_s: float
    bits_match: bool

    @property
    def speedup(self) -> float:
        return self.serial_s / self.parallel_s if self.parallel_s > 0 else float("inf")

    @property
    def gateable(self) -> bool:
        """Whether a wall-clock pool speedup is physically observable."""
        return self.cpu_count > 1


@dataclass
class BackendSpeedResults:
    """Everything ``bench_backend_speed`` reports and gates on."""

    scale_factor: float
    records: int
    queries: list[QueryComparison] = field(default_factory=list)
    service: ServiceComparison | None = None
    fused: FusedComparison | None = None
    scatter: ScatterComparison | None = None

    @property
    def bool_total_s(self) -> float:
        return sum(q.bool_s for q in self.queries)

    @property
    def packed_total_s(self) -> float:
        return sum(q.packed_s for q in self.queries)

    @property
    def speedup(self) -> float:
        packed = self.packed_total_s
        return self.bool_total_s / packed if packed > 0 else float("inf")

    @property
    def bit_exact(self) -> bool:
        return all(q.rows_match for q in self.queries) and (
            self.service is None or self.service.rows_match
        )

    @property
    def stats_identical(self) -> bool:
        return all(q.stats_match for q in self.queries)


def _gate_level_engine(prejoined, config: SystemConfig) -> PimQueryEngine:
    stored = StoredRelation(
        prejoined, PimModule(config), label="one_xb",
        aggregation_width=max_aggregated_width(prejoined),
        reserve_bulk_aggregation=False,
    )
    return PimQueryEngine(stored, config=config, label="one_xb", vectorized=False)


def _timed_executions(engine) -> dict[str, tuple]:
    out: dict[str, tuple] = {}
    for name in QUERY_ORDER:
        start = time.perf_counter()
        execution: QueryExecution = engine.execute(ALL_QUERIES[name])
        out[name] = (time.perf_counter() - start, execution)
    return out


def _timed_service_batch(prejoined, config: SystemConfig):
    service = QueryService(vectorized=True)
    stored = StoredRelation(
        prejoined, PimModule(config), label="ssb",
        aggregation_width=max_aggregated_width(prejoined),
        reserve_bulk_aggregation=False,
    )
    service.register("ssb", stored, config=config)
    queries = [ALL_QUERIES[name] for name in QUERY_ORDER]
    service.execute_batch(queries)          # warm the program cache
    start = time.perf_counter()
    batch = service.execute_batch(queries)
    return time.perf_counter() - start, batch


def _timed_fused_replay(
    prejoined, config: SystemConfig, repeats: int = 3
) -> FusedComparison:
    """Replay the 13 compiled filter programs dispatch vs fused (warm)."""
    stored = StoredRelation(
        prejoined, PimModule(config), label="replay",
        aggregation_width=max_aggregated_width(prejoined),
        reserve_bulk_aggregation=False,
    )
    compiler = ProgramCompiler()
    layout = stored.layouts[0]
    programs = [
        compiler.filter_program(
            ALL_QUERIES[name].predicate, prejoined.schema, layout
        )
        for name in QUERY_ORDER
        if ALL_QUERIES[name].predicate is not None
    ]
    bank = stored.allocations[0].bank
    for program in programs:
        program.fused_kernel()          # compile outside the timed region
    start = time.perf_counter()
    for _ in range(repeats):
        for program in programs:
            program.execute(bank)
    dispatch_s = (time.perf_counter() - start) / repeats
    start = time.perf_counter()
    for _ in range(repeats):
        for program in programs:
            program.run_fused(bank)
    fused_s = (time.perf_counter() - start) / repeats
    return FusedComparison(
        programs=len(programs),
        cycles=sum(p.cycles for p in programs),
        live_nors=sum(p.ir().nor_count for p in programs),
        total_depth=sum(p.ir().depth for p in programs),
        dispatch_s=dispatch_s,
        fused_s=fused_s,
    )


def _timed_scatter(
    prejoined,
    config: SystemConfig,
    shards: int = 4,
    crossbars_per_shard: int = 1024,
    repeats: int = 5,
) -> ScatterComparison:
    """Time the warm fused-kernel scatter serially vs on a K-wide pool.

    The shard banks are synthetic packed banks at a *fixed* serving scale
    (``crossbars_per_shard``, independent of the benchmark's SSB scale
    factor): bitwise kernels are data-independent, so zero-filled banks
    measure exactly the same work, and the fixed size keeps each ufunc
    large enough that the NumPy inner loops — which run with the GIL
    released — dominate the per-instruction Python dispatch.  The real
    compiled SSB filter programs are replayed, so the instruction mix is
    the production one.
    """
    stored = StoredRelation(
        prejoined, PimModule(config), label="scatter",
        aggregation_width=max_aggregated_width(prejoined),
        reserve_bulk_aggregation=False,
    )
    reference = stored.allocations[0].bank
    compiler = ProgramCompiler()
    programs = [
        compiler.filter_program(
            ALL_QUERIES[name].predicate, prejoined.schema, stored.layouts[0]
        )
        for name in QUERY_ORDER
        if ALL_QUERIES[name].predicate is not None
    ]
    for program in programs:
        program.fused_kernel()          # compile outside the timed region
    banks = [
        make_bank("packed", crossbars_per_shard, reference.rows, reference.columns)
        for _ in range(shards)
    ]

    def replay(bank) -> None:
        for program in programs:
            program.run_fused(bank)

    for bank in banks:                  # warm caches and page in the arrays
        replay(bank)
    start = time.perf_counter()
    for _ in range(repeats):
        for bank in banks:
            replay(bank)
    serial_s = (time.perf_counter() - start) / repeats
    with ThreadPoolExecutor(max_workers=shards) as pool:
        list(pool.map(replay, banks))   # warm the pool threads
        start = time.perf_counter()
        for _ in range(repeats):
            list(pool.map(replay, banks))
        parallel_s = (time.perf_counter() - start) / repeats
    # Every bank ran the identical program sequence from the identical
    # initial state, so pooled execution must leave identical bits.
    output_columns = sorted(
        {column for program in programs for column in program.output_columns}
    )
    bits_match = all(
        np.array_equal(banks[0].read_column(column), bank.read_column(column))
        for bank in banks[1:]
        for column in output_columns
    )
    return ScatterComparison(
        shards=shards,
        crossbars_per_shard=crossbars_per_shard,
        cpu_count=os.cpu_count() or 1,
        serial_s=serial_s,
        parallel_s=parallel_s,
        bits_match=bits_match,
    )


def run_backend_speed(
    scale_factor: float | None = None,
    skew: float = 0.5,
    seed: int = 42,
    with_service: bool = True,
    with_fused: bool = True,
    with_scatter: bool = True,
    scatter_shards: int = 4,
) -> BackendSpeedResults:
    """Time the 13 SSB queries on both backends and verify equivalence."""
    if scale_factor is None:
        scale_factor = default_scale_factor()
    dataset = generate(scale_factor=scale_factor, skew=skew, seed=seed)
    prejoined = build_ssb_prejoined(dataset.database)
    # The bool-vs-packed comparison isolates the data-*representation*
    # speedup, so both backends run the per-operation dispatch strategy the
    # packed backend was introduced against (PR 3): under the fused default
    # both backends collapse into a handful of whole-array expressions and
    # the per-op overhead this section exists to compare disappears.  The
    # fused-vs-dispatch strategy speedup is measured by the fused-replay
    # section below, on the packed backend both sections share.
    configs = {
        backend: DEFAULT_CONFIG.with_backend(backend).with_execution("dispatch")
        for backend in BACKENDS
    }

    engines = {
        backend: _gate_level_engine(prejoined, configs[backend])
        for backend in BACKENDS
    }
    timed = {backend: _timed_executions(engines[backend]) for backend in BACKENDS}

    results = BackendSpeedResults(
        scale_factor=scale_factor, records=len(prejoined)
    )
    for name in QUERY_ORDER:
        bool_s, bool_exec = timed["bool"][name]
        packed_s, packed_exec = timed["packed"][name]
        results.queries.append(QueryComparison(
            query=name,
            bool_s=bool_s,
            packed_s=packed_s,
            rows_match=packed_exec.rows == bool_exec.rows,
            stats_match=stats_identical(packed_exec.stats, bool_exec.stats),
        ))

    if with_service:
        bool_s, bool_batch = _timed_service_batch(prejoined, configs["bool"])
        packed_s, packed_batch = _timed_service_batch(prejoined, configs["packed"])
        results.service = ServiceComparison(
            bool_s=bool_s,
            packed_s=packed_s,
            rows_match=all(
                p.rows == b.rows
                for p, b in zip(packed_batch.executions, bool_batch.executions)
            ),
        )

    if with_fused:
        results.fused = _timed_fused_replay(prejoined, configs["packed"])
    if with_scatter:
        results.scatter = _timed_scatter(
            prejoined, configs["packed"], shards=scatter_shards
        )
    return results


def render(results: BackendSpeedResults) -> str:
    """Paper-style comparison table of the two backends."""
    lines = [
        f"Backend speed, SSB SF={results.scale_factor} "
        f"({results.records} pre-joined records), gate-level NOR execution",
        f"{'query':<8} {'bool [s]':>10} {'packed [s]':>11} "
        f"{'speedup':>8}  rows  stats",
    ]
    for q in results.queries:
        lines.append(
            f"{q.query:<8} {q.bool_s:>10.4f} {q.packed_s:>11.4f} "
            f"{q.speedup:>7.1f}x  {'ok' if q.rows_match else 'DIFF':<4}  "
            f"{'ok' if q.stats_match else 'DIFF'}"
        )
    lines.append(
        f"{'total':<8} {results.bool_total_s:>10.4f} "
        f"{results.packed_total_s:>11.4f} {results.speedup:>7.1f}x"
    )
    if results.service is not None:
        s = results.service
        lines.append(
            f"vectorized service batch (13 queries, warm): "
            f"bool {s.bool_s:.4f}s / packed {s.packed_s:.4f}s "
            f"= {s.speedup:.1f}x, rows {'ok' if s.rows_match else 'DIFF'}"
        )
    if results.fused is not None:
        f = results.fused
        lines.append(
            f"fused replay ({f.programs} filter programs, packed, warm): "
            f"dispatch {f.dispatch_s:.4f}s / fused {f.fused_s:.4f}s "
            f"= {f.speedup:.1f}x"
        )
        lines.append(
            f"  NOR-DAG: {f.cycles} charged cycles -> {f.live_nors} live "
            f"gates after CSE, summed critical-path depth {f.total_depth}"
        )
    if results.scatter is not None:
        sc = results.scatter
        note = "" if sc.gateable else (
            f" [single CPU ({sc.cpu_count} core): pool serialised, "
            f"gate skipped]"
        )
        lines.append(
            f"fused-kernel scatter ({sc.shards} shards x "
            f"{sc.crossbars_per_shard} crossbars, warm): "
            f"serial {sc.serial_s:.4f}s / pooled {sc.parallel_s:.4f}s "
            f"= {sc.speedup:.2f}x, bits {'ok' if sc.bits_match else 'DIFF'}"
            f"{note}"
        )
    return "\n".join(lines)


def artifact(results: BackendSpeedResults) -> dict:
    """The ``BENCH_backend.json`` trajectory record."""
    record = {
        "benchmark": "backend_speed",
        "scale_factor": results.scale_factor,
        "records": results.records,
        # Recorded at the top level so trajectory diffs show immediately
        # whether a scatter-speedup change is a code change or a host change
        # (the >1x pool gate only applies when cpu_count > 1).
        "cpu_count": os.cpu_count() or 1,
        "gate_level": {
            "execution": "dispatch",
            "bool_total_s": results.bool_total_s,
            "packed_total_s": results.packed_total_s,
            "speedup": results.speedup,
        },
        "queries": [
            {
                "query": q.query,
                "bool_s": q.bool_s,
                "packed_s": q.packed_s,
                "speedup": q.speedup,
                "rows_match": q.rows_match,
                "stats_match": q.stats_match,
            }
            for q in results.queries
        ],
        "bit_exact": results.bit_exact,
        "stats_identical": results.stats_identical,
    }
    if results.service is not None:
        record["service_vectorized"] = {
            "bool_s": results.service.bool_s,
            "packed_s": results.service.packed_s,
            "speedup": results.service.speedup,
            "rows_match": results.service.rows_match,
        }
    if results.fused is not None:
        record["fused_replay"] = {
            "programs": results.fused.programs,
            "cycles": results.fused.cycles,
            "live_nors": results.fused.live_nors,
            "total_depth": results.fused.total_depth,
            "dispatch_s": results.fused.dispatch_s,
            "fused_s": results.fused.fused_s,
            "speedup": results.fused.speedup,
        }
    if results.scatter is not None:
        record["kernel_scatter"] = {
            "shards": results.scatter.shards,
            "crossbars_per_shard": results.scatter.crossbars_per_shard,
            "cpu_count": results.scatter.cpu_count,
            "serial_s": results.scatter.serial_s,
            "parallel_s": results.scatter.parallel_s,
            "speedup": results.scatter.speedup,
            "bits_match": results.scatter.bits_match,
            "gateable": results.scatter.gateable,
        }
    return record


def write_artifact(results: BackendSpeedResults, path) -> None:
    """Persist the schema-versioned trajectory artifact as JSON."""
    emit.write_artifact(
        path,
        "backend_speed",
        artifact(results),
        gates={
            "bit_exact": results.bit_exact,
            "stats_identical": results.stats_identical,
        },
    )
