"""Backend speed: packed vs boolean simulation of the 13 SSB queries.

The packed crossbar backend (:mod:`repro.pim.packed`) exists purely to make
the *functional simulation* faster — the modelled hardware is unchanged.
This experiment proves both halves of that claim at once:

* **equivalence** — every SSB query must produce bit-identical result rows
  and bit-identical :class:`~repro.pim.stats.PimStats` (latency, energy,
  power samples, wear) on both backends, gate level (every NOR primitive
  executed on the stored bits) and through the vectorized batched service;
* **speed** — the packed backend must beat the boolean reference by a
  configurable wall-clock factor (>=5x by default) on the gate-level query
  path, which is the simulation-bound regime every experiment, benchmark and
  the sharded service ultimately sit on.

``render`` produces the human-readable table and ``artifact`` the
``BENCH_backend.json`` trajectory record consumed by CI.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.core.executor import PimQueryEngine, QueryExecution
from repro.db.storage import StoredRelation
from repro.experiments.common import default_scale_factor
from repro.pim.module import PimModule
from repro.pim.stats import PimStats
from repro.service import QueryService
from repro.ssb import ALL_QUERIES, QUERY_ORDER, build_ssb_prejoined, generate
from repro.ssb.prejoined import max_aggregated_width

BACKENDS = ("bool", "packed")


def stats_identical(a: PimStats, b: PimStats) -> bool:
    """Whether two executions charged bit-identical modelled statistics.

    :class:`PimStats` is a dataclass, so equality compares every field
    (per-phase times, per-component energies, counters, power samples,
    wear) — including fields added in the future.
    """
    return a == b


@dataclass
class QueryComparison:
    """One SSB query timed on both backends (gate-level execution)."""

    query: str
    bool_s: float
    packed_s: float
    rows_match: bool
    stats_match: bool

    @property
    def speedup(self) -> float:
        return self.bool_s / self.packed_s if self.packed_s > 0 else float("inf")


@dataclass
class ServiceComparison:
    """The warm vectorized service batch timed on both backends."""

    bool_s: float
    packed_s: float
    rows_match: bool

    @property
    def speedup(self) -> float:
        return self.bool_s / self.packed_s if self.packed_s > 0 else float("inf")


@dataclass
class BackendSpeedResults:
    """Everything ``bench_backend_speed`` reports and gates on."""

    scale_factor: float
    records: int
    queries: List[QueryComparison] = field(default_factory=list)
    service: Optional[ServiceComparison] = None

    @property
    def bool_total_s(self) -> float:
        return sum(q.bool_s for q in self.queries)

    @property
    def packed_total_s(self) -> float:
        return sum(q.packed_s for q in self.queries)

    @property
    def speedup(self) -> float:
        packed = self.packed_total_s
        return self.bool_total_s / packed if packed > 0 else float("inf")

    @property
    def bit_exact(self) -> bool:
        return all(q.rows_match for q in self.queries) and (
            self.service is None or self.service.rows_match
        )

    @property
    def stats_identical(self) -> bool:
        return all(q.stats_match for q in self.queries)


def _gate_level_engine(prejoined, config: SystemConfig) -> PimQueryEngine:
    stored = StoredRelation(
        prejoined, PimModule(config), label="one_xb",
        aggregation_width=max_aggregated_width(prejoined),
        reserve_bulk_aggregation=False,
    )
    return PimQueryEngine(stored, config=config, label="one_xb", vectorized=False)


def _timed_executions(engine) -> Dict[str, tuple]:
    out: Dict[str, tuple] = {}
    for name in QUERY_ORDER:
        start = time.perf_counter()
        execution: QueryExecution = engine.execute(ALL_QUERIES[name])
        out[name] = (time.perf_counter() - start, execution)
    return out


def _timed_service_batch(prejoined, config: SystemConfig):
    service = QueryService(vectorized=True)
    stored = StoredRelation(
        prejoined, PimModule(config), label="ssb",
        aggregation_width=max_aggregated_width(prejoined),
        reserve_bulk_aggregation=False,
    )
    service.register("ssb", stored, config=config)
    queries = [ALL_QUERIES[name] for name in QUERY_ORDER]
    service.execute_batch(queries)          # warm the program cache
    start = time.perf_counter()
    batch = service.execute_batch(queries)
    return time.perf_counter() - start, batch


def run_backend_speed(
    scale_factor: Optional[float] = None,
    skew: float = 0.5,
    seed: int = 42,
    with_service: bool = True,
) -> BackendSpeedResults:
    """Time the 13 SSB queries on both backends and verify equivalence."""
    if scale_factor is None:
        scale_factor = default_scale_factor()
    dataset = generate(scale_factor=scale_factor, skew=skew, seed=seed)
    prejoined = build_ssb_prejoined(dataset.database)
    configs = {
        backend: DEFAULT_CONFIG.with_backend(backend) for backend in BACKENDS
    }

    engines = {
        backend: _gate_level_engine(prejoined, configs[backend])
        for backend in BACKENDS
    }
    timed = {backend: _timed_executions(engines[backend]) for backend in BACKENDS}

    results = BackendSpeedResults(
        scale_factor=scale_factor, records=len(prejoined)
    )
    for name in QUERY_ORDER:
        bool_s, bool_exec = timed["bool"][name]
        packed_s, packed_exec = timed["packed"][name]
        results.queries.append(QueryComparison(
            query=name,
            bool_s=bool_s,
            packed_s=packed_s,
            rows_match=packed_exec.rows == bool_exec.rows,
            stats_match=stats_identical(packed_exec.stats, bool_exec.stats),
        ))

    if with_service:
        bool_s, bool_batch = _timed_service_batch(prejoined, configs["bool"])
        packed_s, packed_batch = _timed_service_batch(prejoined, configs["packed"])
        results.service = ServiceComparison(
            bool_s=bool_s,
            packed_s=packed_s,
            rows_match=all(
                p.rows == b.rows
                for p, b in zip(packed_batch.executions, bool_batch.executions)
            ),
        )
    return results


def render(results: BackendSpeedResults) -> str:
    """Paper-style comparison table of the two backends."""
    lines = [
        f"Backend speed, SSB SF={results.scale_factor} "
        f"({results.records} pre-joined records), gate-level NOR execution",
        f"{'query':<8} {'bool [s]':>10} {'packed [s]':>11} "
        f"{'speedup':>8}  rows  stats",
    ]
    for q in results.queries:
        lines.append(
            f"{q.query:<8} {q.bool_s:>10.4f} {q.packed_s:>11.4f} "
            f"{q.speedup:>7.1f}x  {'ok' if q.rows_match else 'DIFF':<4}  "
            f"{'ok' if q.stats_match else 'DIFF'}"
        )
    lines.append(
        f"{'total':<8} {results.bool_total_s:>10.4f} "
        f"{results.packed_total_s:>11.4f} {results.speedup:>7.1f}x"
    )
    if results.service is not None:
        s = results.service
        lines.append(
            f"vectorized service batch (13 queries, warm): "
            f"bool {s.bool_s:.4f}s / packed {s.packed_s:.4f}s "
            f"= {s.speedup:.1f}x, rows {'ok' if s.rows_match else 'DIFF'}"
        )
    return "\n".join(lines)


def artifact(results: BackendSpeedResults) -> Dict:
    """The ``BENCH_backend.json`` trajectory record."""
    record = {
        "benchmark": "backend_speed",
        "scale_factor": results.scale_factor,
        "records": results.records,
        "gate_level": {
            "bool_total_s": results.bool_total_s,
            "packed_total_s": results.packed_total_s,
            "speedup": results.speedup,
        },
        "queries": [
            {
                "query": q.query,
                "bool_s": q.bool_s,
                "packed_s": q.packed_s,
                "speedup": q.speedup,
                "rows_match": q.rows_match,
                "stats_match": q.stats_match,
            }
            for q in results.queries
        ],
        "bit_exact": results.bit_exact,
        "stats_identical": results.stats_identical,
    }
    if results.service is not None:
        record["service_vectorized"] = {
            "bool_s": results.service.bool_s,
            "packed_s": results.service.packed_s,
            "speedup": results.service.speedup,
            "rows_match": results.service.rows_match,
        }
    return record


def write_artifact(results: BackendSpeedResults, path) -> None:
    """Persist the trajectory artifact as JSON."""
    with open(path, "w") as handle:
        json.dump(artifact(results), handle, indent=2)
        handle.write("\n")
