"""Schema-versioned envelope shared by every ``BENCH_*.json`` artifact.

Each benchmark used to open its own file handle and dump whatever record it
had; provenance (which commit, which host) and the pass/fail gate outcomes
lived only in the CI log.  :func:`write_artifact` is now the one place a
trajectory artifact is written: it wraps the benchmark's payload in a fixed
envelope —

* ``schema_version`` — bumped whenever the envelope shape changes, so a
  trajectory diff across commits can tell a format change from a result
  change;
* ``benchmark`` — the benchmark's canonical name;
* ``git_revision`` — the commit the numbers came from (``None`` outside a
  git checkout);
* ``cpu_count`` — host parallelism, needed to interpret any pooled-scatter
  or sharding figure;
* ``gates`` — the boolean acceptance-gate outcomes the benchmark asserts,
  so a red gate is visible in the artifact itself, not just the exit code.

The payload's own keys follow the envelope unchanged (the envelope owns
``benchmark`` and ``cpu_count`` on collision — the values are identical by
construction).
"""

from __future__ import annotations

import json
import os
import subprocess
from collections.abc import Mapping

#: Bump when the envelope keys or their meaning change.
SCHEMA_VERSION = 1


def git_revision() -> str | None:
    """Commit hash of the repository this module sits in (``None`` if unknown)."""
    try:
        probe = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if probe.returncode != 0:
        return None
    return probe.stdout.strip() or None


def make_artifact(
    name: str,
    payload: Mapping,
    gates: Mapping[str, object] | None = None,
) -> dict:
    """Wrap a benchmark's payload in the schema-versioned envelope."""
    record: dict = {
        "schema_version": SCHEMA_VERSION,
        "benchmark": name,
        "git_revision": git_revision(),
        "cpu_count": os.cpu_count() or 1,
    }
    if gates is not None:
        record["gates"] = dict(gates)
    for key, value in payload.items():
        if key in ("benchmark", "cpu_count"):
            continue
        record[key] = value
    return record


def write_artifact(
    path,
    name: str,
    payload: Mapping,
    gates: Mapping[str, object] | None = None,
) -> dict:
    """Write the enveloped artifact as indented JSON; returns the record."""
    record = make_artifact(name, payload, gates=gates)
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    return record
