"""Experiment harnesses regenerating every table and figure of the paper.

Each module reproduces one piece of the evaluation (Section V):

========================  =====================================================
Module                    Paper content
========================  =====================================================
``table1_config``         Table I — architecture and system configuration
``fig4_model``            Fig. 4 — empirical latency modelling of host-gb/pim-gb
``fig5_area``             Fig. 5 — PIM chip area breakdown
``table2_summary``        Table II — per-query selectivity and subgroup counts
``fig6_latency``          Fig. 6 — SSB execution latency, all five configurations
``fig7_energy``           Fig. 7 — PIM memory energy per query
``fig8_power``            Fig. 8 — peak power of a single PIM chip
``fig9_endurance``        Fig. 9 — required cell endurance over ten years
``headline``              The abstract's geo-mean speedup / energy / lifetime
``ablation``              Additional ablations called out in DESIGN.md
========================  =====================================================

All experiments execute the benchmark functionally on a laptop-sized SSB
instance and report costs extrapolated to the paper's SF=10 relation size
(see ``ExperimentSetup.timing_scale``); ``EXPERIMENTS.md`` records the
measured values next to the paper's.
"""

from repro.experiments.common import ExperimentSetup, QueryRecord, build_setup, run_all_queries

__all__ = ["ExperimentSetup", "QueryRecord", "build_setup", "run_all_queries"]
