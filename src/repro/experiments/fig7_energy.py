"""Fig. 7 — PIM memory energy for the SSB queries."""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.common import (
    PIM_CONFIGS,
    QueryRecord,
    format_table,
    geomean,
    records_by,
)
from repro.ssb import QUERY_ORDER

#: Queries for which both one-xb and PIMDB perform PIM aggregation in the
#: paper (the 4.31x energy comparison is taken over these).
PIM_AGGREGATION_QUERIES = ("Q1.1", "Q1.2", "Q1.3", "Q2.3", "Q3.4", "Q4.1")


def fig7_rows(records: Sequence[QueryRecord], configs: Sequence[str] = PIM_CONFIGS):
    """One row per query: PIM module energy (joules) per PIM configuration."""
    indexed = records_by(records)
    rows = []
    for query in QUERY_ORDER:
        row: list[object] = [query]
        for config in configs:
            record = indexed.get((config, query))
            row.append(record.energy_j if record else float("nan"))
        rows.append(row)
    return rows


def pimdb_energy_ratio(records: Sequence[QueryRecord]) -> float:
    """Geo-mean energy of PIMDB over one-xb on the PIM-aggregation queries."""
    indexed = records_by(records)
    ratios = []
    for query in PIM_AGGREGATION_QUERIES:
        one = indexed.get(("one_xb", query))
        pimdb = indexed.get(("pimdb", query))
        if one and pimdb and one.energy_j > 0:
            ratios.append(pimdb.energy_j / one.energy_j)
    return geomean(ratios)


def render(records: Sequence[QueryRecord], configs: Sequence[str] = PIM_CONFIGS) -> str:
    """Fig. 7 as printable text (energies in millijoules)."""
    rows = []
    for row in fig7_rows(records, configs):
        rows.append([row[0]] + [f"{value * 1e3:.2f}" for value in row[1:]])
    table = format_table(["Query"] + [f"{c} [mJ]" for c in configs], rows)
    ratio = pimdb_energy_ratio(records)
    footer = (
        f"\ngeo-mean PIMDB/one_xb energy on PIM-aggregation queries: "
        f"{ratio:.2f}x (paper: 4.31x); all queries below 1 J as in the paper: "
        f"{all(r.energy_j < 1.0 for r in records if r.config in configs)}"
    )
    return table + footer
