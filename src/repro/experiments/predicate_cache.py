"""SSB template replay under DML churn — semantic candidate cache vs plan memo.

The semantic candidate-set cache's acceptance story: a serving workload
replays the 13 SSB query templates round after round while the relation
churns underneath (tombstoning DELETEs, slot-reusing INSERTs, Algorithm 1
UPDATEs).  The PR 5 planner memo is wholesale-invalidated by *every*
maintenance event, so each replay round pays the full zone-map walk again;
the semantic cache keyed on normalized predicate fragments re-validates only
the crossbars whose epochs the DML actually bumped — and a DELETE bumps
none.

The experiment runs the same deterministic workload through four engines —
{legacy memo, semantic cache} x {packed, bool backend} — over identical
copies of the generated pre-joined relation and gates on:

* **bit-exact rows** — every query, every round, legacy vs semantic and
  packed vs bool;
* **identical masks** — each round the semantic engine's cached decisions
  are compared against a cold full walk over the same maintained zone maps;
* **>= 5x fewer zone-map entries** consulted on the cached replay rounds
  than the legacy memo bills for the same rounds.

``render`` produces the human-readable report and ``artifact`` the
``BENCH_pcache.json`` trajectory record consumed by CI.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.config import DEFAULT_CONFIG
from repro.core.executor import PimQueryEngine
from repro.db import dml
from repro.db.query import And, Comparison
from repro.db.relation import Relation
from repro.db.storage import StoredRelation
from repro.db.update import execute_update
from repro.experiments import emit
from repro.experiments.common import default_scale_factor
from repro.pim.controller import PimExecutor
from repro.pim.module import PimModule
from repro.planner.planner import RelationStatistics
from repro.planner.zonemap import CHECK_CYCLES
from repro.ssb import ALL_QUERIES, QUERY_ORDER, build_ssb_prejoined, generate
from repro.ssb.prejoined import max_aggregated_width

BACKENDS = ("packed", "bool")
MODES = ("legacy", "semantic")

#: Replay rounds after the cold first round; DML runs before each of them.
DEFAULT_ROUNDS = 4

#: INSERTs per round.  Kept small on purpose: each lands in (at most) one
#: crossbar and bumps only that epoch, which is the locality the cache
#: exploits.  The DELETE is deliberately *large* — it never bumps an epoch.
DEFAULT_INSERTS_PER_ROUND = 8

#: The acceptance gate on replay rounds (legacy entries / semantic entries).
MIN_ENTRY_REDUCTION = 5.0


def _generate_workload(
    relation: Relation, rounds: int, inserts_per_round: int, seed: int
) -> list[dict]:
    """One concrete op list per replay round, replayed verbatim everywhere.

    All ops are pure data (encoded records, predicates), so the four engines
    see byte-identical DML.
    """
    rng = np.random.default_rng(seed)
    names = [a.name for a in relation.schema.attributes]
    orderdates = np.unique(relation.columns["lo_orderdate"])
    workload = []
    for index in range(rounds):
        # Re-insert copies of existing rows: already-encoded, guaranteed
        # in-domain, and identical across the engines.
        picks = rng.integers(0, len(relation), inserts_per_round)
        records = [
            {name: int(relation.columns[name][i]) for name in names}
            for i in picks
        ]
        # A rotating quantity window tombstones a visible slice of the fact
        # rows (lo_quantity is 1..50, so ~2-4% of the relation) — the cache
        # must absorb this without re-checking a single zone-map entry.
        low = 1 + (index * 11) % 45
        delete = Comparison("lo_quantity", "between", low=low, high=low + 1)
        # A near-point UPDATE: one order date x one quantity selects a
        # handful of rows, so only their crossbars' epochs are bumped.
        # (Predicate constants are raw values; the column holds dict codes.)
        code = int(orderdates[int(rng.integers(0, len(orderdates)))])
        date = relation.schema.attribute("lo_orderdate").decode_value(code)
        update = (
            And((
                Comparison("lo_orderdate", "==", date),
                Comparison("lo_quantity", "==", int(rng.integers(1, 51))),
            )),
            {"lo_tax": int(rng.integers(0, 9))},
        )
        workload.append({"insert": records, "delete": delete, "update": update})
    return workload


@dataclass
class EngineReplayRun:
    """One (backend, mode) engine's trip through the replay workload."""

    backend: str
    mode: str
    wall_s: float
    #: Zone-map entries billed to the queries of each round (round 0 is the
    #: cold round; DML precedes every later round).
    round_entries: list[float] = field(default_factory=list)
    #: Per-round, per-query result rows (encoded), for cross-run comparison.
    round_rows: list[list[dict]] = field(default_factory=list)
    #: Candidate-cache counters at the end of the run (semantic mode only).
    cache: dict | None = None

    @property
    def cold_entries(self) -> float:
        return self.round_entries[0] if self.round_entries else 0.0

    @property
    def replay_entries(self) -> float:
        """Entries billed across the cached replay rounds (all but round 0)."""
        return float(sum(self.round_entries[1:]))


@dataclass
class PredicateCacheResults:
    """Everything ``bench_predicate_cache`` reports and gates on."""

    scale_factor: float
    rounds: int
    inserts_per_round: int
    queries: list[str]
    runs: list[EngineReplayRun] = field(default_factory=list)
    #: Every cached/re-validated semantic decision matched a cold full walk
    #: over the same maintained zone maps.
    masks_identical: bool = True

    def run(self, backend: str, mode: str) -> EngineReplayRun:
        for candidate in self.runs:
            if candidate.backend == backend and candidate.mode == mode:
                return candidate
        raise KeyError(f"no run for {backend}/{mode}")

    @property
    def modes_agree(self) -> bool:
        """Legacy and semantic rows identical on every backend."""
        return all(
            self.run(b, "legacy").round_rows == self.run(b, "semantic").round_rows
            for b in BACKENDS
        )

    @property
    def backends_agree(self) -> bool:
        """Rows identical across the simulation backends."""
        reference = BACKENDS[0]
        return all(
            self.run(b, mode).round_rows == self.run(reference, mode).round_rows
            for b in BACKENDS[1:]
            for mode in MODES
        )

    @property
    def bit_exact(self) -> bool:
        return self.modes_agree and self.backends_agree

    def entry_reduction(self, backend: str) -> float:
        """Replay-round entry ratio, legacy memo over semantic cache."""
        legacy = self.run(backend, "legacy").replay_entries
        semantic = self.run(backend, "semantic").replay_entries
        if semantic <= 0:
            return float("inf") if legacy > 0 else 1.0
        return legacy / semantic

    def min_entry_reduction(self) -> float:
        return min(self.entry_reduction(b) for b in BACKENDS)


def _copy_relation(relation: Relation) -> Relation:
    """An independent functional copy (DML mutates the ground truth)."""
    return Relation(
        relation.schema,
        {name: column.copy() for name, column in relation.columns.items()},
    )


def _build_engine(
    relation: Relation, backend: str, mode: str, aggregation_width: int
) -> PimQueryEngine:
    system = DEFAULT_CONFIG.with_backend(backend)
    module = PimModule(system)
    stored = StoredRelation(
        relation, module, label=f"{mode}-{backend}",
        aggregation_width=aggregation_width,
        reserve_bulk_aggregation=False,
    )
    stored.statistics.semantic_cache = mode == "semantic"
    return PimQueryEngine(
        stored, config=system, label=f"{mode}-{backend}",
        vectorized=True, pruning=True,
    )


def _entries_billed(execution, engine: PimQueryEngine) -> float:
    """Invert the zone-map cost model: billed entries from the check phase."""
    seconds = execution.stats.time_by_phase.get("zonemap-check", 0.0)
    return seconds * engine.config.host.frequency_hz / CHECK_CYCLES


def _masks_match_cold_walk(engine: PimQueryEngine, queries: list[str]) -> bool:
    """Compare the engine's cached decisions against a cold full walk.

    The cold reference shares the *maintained* zone maps (a from-scratch
    rebuild could legitimately have narrower bounds) but walks them without
    any cache, exactly as PR 5 did.
    """
    stored = engine.stored
    crossbars_per_page = engine.config.pim.crossbars_per_page
    for name in queries:
        predicate = ALL_QUERIES[name].predicate
        cached = stored.statistics.plan(
            predicate, stored.partition_attributes, crossbars_per_page,
            peek=True,
        )
        cold = RelationStatistics(
            stored.statistics.zonemaps,
            stored.statistics.selectivity,
            semantic_cache=False,
        ).plan(predicate, stored.partition_attributes, crossbars_per_page)
        if len(cached.candidates) != len(cold.candidates):
            return False
        if not all(
            np.array_equal(a, b)
            for a, b in zip(cached.candidates, cold.candidates)
        ):
            return False
    return True


def _apply_dml(engine: PimQueryEngine, ops: dict) -> None:
    executor = PimExecutor(engine.config)
    dml.execute_delete(
        engine.stored, ops["delete"], executor, vectorized=True
    )
    dml.execute_insert(engine.stored, ops["insert"], executor, encoded=True)
    predicate, assignments = ops["update"]
    execute_update(engine.stored, predicate, assignments, executor)


def _run_engine(
    engine: EngineReplayRun,
    prejoined: Relation,
    workload: list[dict],
    queries: list[str],
    aggregation_width: int,
) -> bool:
    """Replay the workload through one engine; returns the mask verdict."""
    pim = _build_engine(
        _copy_relation(prejoined), engine.backend, engine.mode,
        aggregation_width,
    )
    masks_ok = True
    start = time.perf_counter()
    for round_index in range(len(workload) + 1):
        if round_index > 0:
            _apply_dml(pim, workload[round_index - 1])
        entries = 0.0
        rows: list[dict] = []
        for name in queries:
            execution = pim.execute(ALL_QUERIES[name])
            entries += _entries_billed(execution, pim)
            rows.append(
                {str(k): dict(v) for k, v in sorted(execution.rows.items())}
            )
        engine.round_entries.append(entries)
        engine.round_rows.append(rows)
        if engine.mode == "semantic":
            masks_ok = masks_ok and _masks_match_cold_walk(pim, queries)
    engine.wall_s = time.perf_counter() - start
    if engine.mode == "semantic":
        engine.cache = asdict(pim.stored.statistics.candidate_stats())
    return masks_ok


def run_predicate_cache(
    scale_factor: float | None = None,
    rounds: int = DEFAULT_ROUNDS,
    inserts_per_round: int = DEFAULT_INSERTS_PER_ROUND,
    seed: int = 23,
    queries: list[str] | None = None,
) -> PredicateCacheResults:
    """Replay the SSB templates under churn on every (backend, mode) engine."""
    if scale_factor is None:
        scale_factor = default_scale_factor()
    if queries is None:
        queries = list(QUERY_ORDER)
    dataset = generate(scale_factor=scale_factor, skew=0.5, seed=42)
    prejoined = build_ssb_prejoined(dataset.database)
    aggregation_width = max_aggregated_width(prejoined)
    workload = _generate_workload(prejoined, rounds, inserts_per_round, seed)

    results = PredicateCacheResults(
        scale_factor=scale_factor,
        rounds=rounds,
        inserts_per_round=inserts_per_round,
        queries=queries,
    )
    for backend in BACKENDS:
        for mode in MODES:
            run = EngineReplayRun(backend=backend, mode=mode, wall_s=0.0)
            masks_ok = _run_engine(
                run, prejoined, workload, queries, aggregation_width
            )
            results.masks_identical = results.masks_identical and masks_ok
            results.runs.append(run)
    return results


def render(results: PredicateCacheResults) -> str:
    """Human-readable replay report."""
    lines = [
        f"Predicate-cache replay: SF {results.scale_factor}, "
        f"{len(results.queries)} SSB templates x {results.rounds} replay "
        f"rounds, {results.inserts_per_round} inserts + range DELETE + "
        f"point UPDATE per round",
        f"{'backend':<8} {'mode':<9} {'cold entries':>13} "
        f"{'replay entries':>15} {'wall [s]':>9}",
    ]
    for run in results.runs:
        lines.append(
            f"{run.backend:<8} {run.mode:<9} {run.cold_entries:>13.0f} "
            f"{run.replay_entries:>15.0f} {run.wall_s:>9.3f}"
        )
    for backend in BACKENDS:
        lines.append(
            f"{backend}: replay zone-map entries cut "
            f"{results.entry_reduction(backend):.1f}x (gate "
            f">= {MIN_ENTRY_REDUCTION:.0f}x)"
        )
    for run in results.runs:
        if run.cache is not None:
            c = run.cache
            lines.append(
                f"{run.backend} candidate cache: {c['hits']} hits / "
                f"{c['misses']} misses / {c['revalidations']} re-validations "
                f"({c['stale_crossbars']} stale crossbars re-checked), "
                f"{c['evictions']} evictions"
            )
    lines.append(
        f"bit-exact rows: {'yes' if results.bit_exact else 'NO'} "
        f"(modes agree: {'yes' if results.modes_agree else 'NO'}, backends "
        f"agree: {'yes' if results.backends_agree else 'NO'}); cached masks "
        f"== cold walk: {'yes' if results.masks_identical else 'NO'}"
    )
    return "\n".join(lines)


def artifact(results: PredicateCacheResults) -> dict:
    """The ``BENCH_pcache.json`` trajectory record."""
    return {
        "benchmark": "predicate_cache",
        "scale_factor": results.scale_factor,
        "rounds": results.rounds,
        "inserts_per_round": results.inserts_per_round,
        "queries": list(results.queries),
        "bit_exact": results.bit_exact,
        "modes_agree": results.modes_agree,
        "backends_agree": results.backends_agree,
        "masks_identical": results.masks_identical,
        "min_entry_reduction": (
            None if results.min_entry_reduction() == float("inf")
            else results.min_entry_reduction()
        ),
        "entry_reduction": {
            backend: (
                None if results.entry_reduction(backend) == float("inf")
                else results.entry_reduction(backend)
            )
            for backend in BACKENDS
        },
        "runs": [
            {
                "backend": run.backend,
                "mode": run.mode,
                "wall_s": run.wall_s,
                "cold_entries": run.cold_entries,
                "replay_entries": run.replay_entries,
                "round_entries": list(run.round_entries),
                "cache": run.cache,
            }
            for run in results.runs
        ],
    }


def write_artifact(results: PredicateCacheResults, path) -> None:
    """Persist the schema-versioned trajectory artifact as JSON."""
    emit.write_artifact(
        path,
        "predicate_cache",
        artifact(results),
        gates={
            "bit_exact": results.bit_exact,
            "masks_identical": results.masks_identical,
            "modes_agree": results.modes_agree,
            "backends_agree": results.backends_agree,
        },
    )
